"""Fixed-point function summaries over the project call graph.

Given the per-module facts from :mod:`repro.analysis.callgraph`, this
module computes one **summary** per function by replaying its event
stream against the summaries of its callees, iterating to a fixed
point:

* ``mutates`` — parameter indices the function writes in place
  (directly, through a view/alias, or by forwarding the parameter to a
  callee summarized as mutating that position);
* ``returns_view_of`` — parameter indices whose memory the return value
  may alias (view-method chains compose across returns);
* ``draws_global_rng`` — a ``np.random.*`` / stdlib ``random.*`` draw is
  reachable without a passed-in ``Generator`` (with a witness chain for
  the report);
* ``requires_no_grad`` — the function (transitively) reaches a
  graph-building call outside a ``no_grad`` block; exported in the
  graph/summaries JSON for the sharding work, not enforced by a rule.

The same replay, run once more after convergence, produces the raw
RA801–RA805 findings (see :mod:`repro.analysis.interprocedural` for the
rule classes and the catalogue in ``docs/ANALYSIS.md`` for semantics).

**Cache**: :class:`SummaryCache` persists per-file facts *and* raw
module-rule findings to one deterministic JSON sidecar keyed by the
file's SHA-256 and a signature of the analysis package itself.  On a
warm run the engine never re-parses an unchanged file — it re-applies
``noqa``/baseline (pure text operations) and re-runs only the cheap
fixed point, which is what keeps full-tree re-lints inside the <2 s CI
budget.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from .callgraph import (
    SNAPSHOT_NAME_RE,
    FunctionFacts,
    ModuleFacts,
    ProjectIndex,
)

_MAX_ITERATIONS = 50
_MAX_WITNESS_HOPS = 8

#: replay origins:
#:   ("param", i)            the caller's i-th parameter (may-alias)
#:   ("buffer", desc)        Tensor.data / Tensor.grad storage
#:   ("frozen", desc)        capture()-frozen or snapshot-named value
#:   ("instance", class_fqn) result of a resolved constructor call
#:   ("retview", inner, lbl) a view of `inner` returned by callee `lbl`
Origin = Optional[Tuple[Any, ...]]


@dataclass(frozen=True)
class FunctionSummary:
    """The interprocedural lattice value for one function."""

    mutates: FrozenSet[int] = frozenset()
    returns_view_of: FrozenSet[int] = frozenset()
    draws_global_rng: bool = False
    rng_witness: Optional[Tuple[str, ...]] = None
    requires_no_grad: bool = False

    def as_dict(self) -> Dict[str, Any]:
        return {
            "mutates": sorted(self.mutates),
            "returns_view_of": sorted(self.returns_view_of),
            "draws_global_rng": self.draws_global_rng,
            "rng_witness": list(self.rng_witness) if self.rng_witness else None,
            "requires_no_grad": self.requires_no_grad,
        }


@dataclass
class RawFinding:
    """A project-rule hit before severity/noqa/baseline are applied."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    source: str


@dataclass
class ProjectAnalysis:
    """Call graph + summaries + raw RA80x findings for one tree."""

    index: ProjectIndex
    summaries: Dict[str, FunctionSummary] = field(default_factory=dict)
    edges: List[Tuple[str, str, int]] = field(default_factory=list)
    cycles: List[List[str]] = field(default_factory=list)
    raw_findings: List[RawFinding] = field(default_factory=list)

    def findings_for(self, rule_id: str) -> List[RawFinding]:
        return [f for f in self.raw_findings if f.rule == rule_id]

    # ------------------------------------------------------------- #
    # exports (`repro lint --call-graph dot|json`)
    # ------------------------------------------------------------- #
    def graph_as_dict(self) -> Dict[str, Any]:
        functions = {}
        for fqn in sorted(self.index.functions):
            mod, fn = self.index.functions[fqn]
            functions[fqn] = {
                "path": mod.path,
                "line": fn.line,
                "summary": self.summaries[fqn].as_dict(),
            }
        return {
            "version": 1,
            "functions": functions,
            "edges": [[a, b, line]
                      for a, b, line in sorted(set(self.edges))],
            "cycles": [sorted(c) for c in
                       sorted(self.cycles, key=lambda c: sorted(c)[0])],
        }

    def graph_as_dot(self) -> str:
        lines = ["digraph callgraph {", "  rankdir=LR;",
                 '  node [shape=box, fontsize=10];']
        for fqn in sorted(self.index.functions):
            summary = self.summaries[fqn]
            attrs = []
            if summary.mutates:
                attrs.append('color="red"')
                attrs.append(
                    f'xlabel="mutates {",".join(map(str, sorted(summary.mutates)))}"')
            elif summary.draws_global_rng:
                attrs.append('color="orange"')
            label = fqn.replace('"', r'\"')
            lines.append(f'  "{label}" [{", ".join(attrs)}];' if attrs
                         else f'  "{label}";')
        for a, b, _line in sorted(set(self.edges)):
            lines.append(f'  "{a}" -> "{b}";')
        lines.append("}")
        return "\n".join(lines) + "\n"


# --------------------------------------------------------------------- #
# replay
# --------------------------------------------------------------------- #


@dataclass
class _ReplayResult:
    mutates: set = field(default_factory=set)
    returns_view_of: set = field(default_factory=set)
    draws: bool = False
    witness: Optional[Tuple[str, ...]] = None
    builds_graph: bool = False
    edges: List[Tuple[str, int]] = field(default_factory=list)
    dynamic_forwards: List[Tuple[int, int, str]] = field(default_factory=list)
    findings: List[RawFinding] = field(default_factory=list)

    def bits(self) -> FunctionSummary:
        return FunctionSummary(
            mutates=frozenset(self.mutates),
            returns_view_of=frozenset(self.returns_view_of),
            draws_global_rng=self.draws,
            rng_witness=self.witness,
            requires_no_grad=self.builds_graph,
        )


class _Replayer:
    """Replays one function's events against current callee summaries."""

    def __init__(self, index: ProjectIndex, mod: ModuleFacts,
                 fqn: str, fn: FunctionFacts,
                 summaries: Dict[str, FunctionSummary],
                 collect: bool):
        self.index = index
        self.mod = mod
        self.fqn = fqn
        self.fn = fn
        self.summaries = summaries
        self.collect = collect
        self.env: Dict[str, Origin] = {
            p: ("param", i) for i, p in enumerate(fn.params)}
        self.call_origins: Dict[int, Origin] = {}
        self.result = _ReplayResult()

    # ------------------------------------------------------------- #
    def origin_of(self, ref: Optional[List[Any]]) -> Origin:
        if ref is None:
            return None
        kind = ref[0]
        if kind == "name":
            name = ref[1]
            if name in self.env:
                return self.env[name]
            if SNAPSHOT_NAME_RE.search(name):
                return ("frozen", f"'{name}'")
            return None
        if kind == "buffer":
            return ("buffer", ref[1])
        if kind == "frozen":
            return ("frozen", ref[1])
        if kind == "call":
            return self.call_origins.get(ref[1])
        return None

    @staticmethod
    def _unwrap(origin: Origin) -> Origin:
        """Peel ``retview`` wrappers down to the aliased storage."""
        while origin is not None and origin[0] == "retview":
            origin = origin[1]
        return origin

    @staticmethod
    def _describe(origin: Origin) -> str:
        if origin is None:
            return "a value"
        kind = origin[0]
        if kind == "buffer":
            return f"the Tensor buffer {origin[1]}"
        if kind == "frozen":
            desc = origin[1]
            # descriptors that are already full noun phrases ("a capture()-
            # frozen snapshot") stand alone; quoted names get the prefix
            return desc if desc.startswith("a ") else f"the frozen snapshot {desc}"
        if kind == "param":
            return f"parameter {origin[1]}"
        if kind == "retview":
            inner = _Replayer._describe(_Replayer._unwrap(origin))
            return f"a returned view of {inner}"
        return "a value"

    def _finding(self, rule: str, event: Dict[str, Any],
                 message: str) -> None:
        if not self.collect:
            return
        self.result.findings.append(RawFinding(
            rule=rule, path=self.mod.path, line=event.get("line", self.fn.line),
            col=event.get("col", 0), message=message,
            source=event.get("src", "")))

    # ------------------------------------------------------------- #
    # callee resolution
    # ------------------------------------------------------------- #
    def _resolve_callee(self, callee: Dict[str, Any]
                        ) -> Tuple[Optional[str], int, bool, str]:
        """-> (fqn | None, arg shift, is_dynamic, display label)."""
        kind = callee["kind"]
        if kind == "dynamic":
            return None, 0, True, "<dynamic>"
        if kind == "unknown":
            return None, 0, False, "<unknown>"
        if kind == "name":
            name = callee["name"]
            if name in self.fn.local_funcs:
                return (f"{self.mod.module}.{self.fn.local_funcs[name]}",
                        0, False, name)
            if name in self.mod.functions:
                return f"{self.mod.module}.{name}", 0, False, name
            resolved = self.index.resolve_in_module(self.mod, [name])
            if resolved is not None:
                if resolved[0] == "func":
                    return resolved[1], 0, False, name
                ctor = self.index.constructor_of(resolved[1])
                return ctor, 1, False, name
            origin = self.env.get(name)
            if name in self.env:
                # a locally-bound callable: dynamic dispatch
                return None, 0, True, name
            return None, 0, False, name
        if kind == "self":
            if self.fn.class_name is None:
                return None, 0, False, f"self.{callee['method']}"
            resolved = self.index.resolve_class_method(
                f"{self.mod.module}.{self.fn.class_name}", callee["method"])
            label = f"self.{callee['method']}"
            if resolved is not None and resolved[0] == "func":
                return resolved[1], 1, False, label
            return None, 0, False, label
        if kind == "selfattr":
            label = f"self.{callee['attr']}.{callee['method']}"
            cls = self.mod.classes.get(self.fn.class_name or "")
            if cls is not None and callee["attr"] in cls.attr_types:
                type_ref = cls.attr_types[callee["attr"]]
                resolved = self.index.resolve_in_module(
                    self.mod, type_ref.split("."))
                if resolved is not None and resolved[0] == "class":
                    method = self.index.resolve_class_method(
                        resolved[1], callee["method"])
                    if method is not None and method[0] == "func":
                        return method[1], 1, False, label
            return None, 0, False, label
        # kind == "dotted"
        name = callee["name"]
        label = name
        resolved = self.index.resolve_in_module(self.mod, name.split("."))
        if resolved is not None:
            if resolved[0] == "func":
                return resolved[1], 0, False, label
            ctor = self.index.constructor_of(resolved[1])
            return ctor, 1, False, label
        obj, method = callee.get("obj"), callee.get("method")
        if obj is not None and method is not None:
            origin = self.env.get(obj)
            if origin is not None and origin[0] == "instance":
                method_resolved = self.index.resolve_class_method(
                    origin[1], method)
                if method_resolved is not None and method_resolved[0] == "func":
                    return method_resolved[1], 1, False, label
        return None, 0, False, label

    def _class_of_constructor(self, callee: Dict[str, Any]) -> Optional[str]:
        if callee["kind"] not in ("name", "dotted"):
            return None
        resolved = self.index.resolve_in_module(
            self.mod, callee["name"].split("."))
        if resolved is not None and resolved[0] == "class":
            return resolved[1]
        return None

    # ------------------------------------------------------------- #
    # events
    # ------------------------------------------------------------- #
    def run(self) -> _ReplayResult:
        for idx, event in enumerate(self.fn.events):
            kind = event["ev"]
            if kind == "bind":
                self.env[event["name"]] = self.origin_of(event["val"])
            elif kind == "mut":
                self._mutation(event)
            elif kind == "rng":
                if not event["suppressed"]:
                    self.result.draws = True
                    if self.result.witness is None:
                        self.result.witness = (
                            "direct", event["name"], str(event["line"]))
            elif kind == "ret":
                origin = self._unwrap(self.origin_of(event["val"]))
                if origin is not None and origin[0] == "param":
                    self.result.returns_view_of.add(origin[1])
            elif kind == "call":
                self._call(idx, event)
        return self.result

    def _mutation(self, event: Dict[str, Any]) -> None:
        origin = self.origin_of(event["val"])
        if origin is None:
            return
        if origin[0] == "retview":
            inner = self._unwrap(origin)
            label = origin[2]
            if inner is not None and inner[0] in ("buffer", "frozen"):
                self._finding(
                    "RA802", event,
                    f"in-place write ({event['how']}) through a view of "
                    f"{self._describe(inner)} returned by '{label}' — the "
                    f"write escapes this function; copy before mutating")
            if inner is not None and inner[0] == "param":
                self.result.mutates.add(inner[1])
            return
        if origin[0] == "param":
            self.result.mutates.add(origin[1])

    def _call(self, idx: int, event: Dict[str, Any]) -> None:
        if event.get("graph") and not event["no_grad"]:
            self.result.builds_graph = True
        callee = event["callee"]
        fqn, shift, dynamic, label = self._resolve_callee(callee)
        summary = self.summaries.get(fqn) if fqn is not None else None

        arg_origins: List[Tuple[Optional[int], Origin]] = []
        if not event.get("starargs"):
            for pos, ref in enumerate(event["args"]):
                arg_origins.append((pos + shift, self.origin_of(ref)))
        callee_params = (self.index.functions[fqn][1].params
                         if fqn in self.index.functions else [])
        for kw_name, ref in sorted(event.get("kwargs", {}).items()):
            param_idx = (callee_params.index(kw_name)
                         if kw_name in callee_params else None)
            arg_origins.append((param_idx, self.origin_of(ref)))

        if dynamic:
            if any(self._unwrap(origin) is not None
                   and self._unwrap(origin)[0] == "param"
                   for _i, origin in arg_origins):
                self.result.dynamic_forwards.append(
                    (event["line"], event["col"], event.get("src", "")))
            return

        if fqn is not None:
            self.result.edges.append((fqn, event["line"]))

        if summary is not None:
            self._apply_callee_summary(event, fqn, summary, label,
                                       arg_origins, callee_params)

        # result origin: constructor instance or returned view
        result_origin: Origin = None
        cls = self._class_of_constructor(callee)
        if cls is not None:
            result_origin = ("instance", cls)
        elif summary is not None and summary.returns_view_of:
            for param_idx, origin in arg_origins:
                if param_idx in summary.returns_view_of and origin is not None:
                    result_origin = ("retview", origin, label)
                    break
        self.call_origins[idx] = result_origin

    def _apply_callee_summary(self, event: Dict[str, Any], fqn: str,
                              summary: FunctionSummary, label: str,
                              arg_origins, callee_params) -> None:
        if not event["no_grad"] and summary.requires_no_grad:
            self.result.builds_graph = True
        if summary.draws_global_rng:
            self.result.draws = True
            if self.result.witness is None:
                self.result.witness = ("via", fqn)
            if self.fn.seeded:
                chain = _witness_chain(self.summaries, fqn)
                self._finding(
                    "RA803", event,
                    f"'{self.fn.qualname}' takes a seed/Generator but this "
                    f"call to '{label}' reaches the process-global RNG "
                    f"({chain}) — thread the Generator through the call "
                    f"chain instead")
        for param_idx, origin in arg_origins:
            if param_idx is None or param_idx not in summary.mutates:
                continue
            param_name = (callee_params[param_idx]
                          if param_idx < len(callee_params)
                          else str(param_idx))
            storage = self._unwrap(origin)
            if storage is None:
                continue
            if storage[0] in ("buffer", "frozen"):
                self._finding(
                    "RA801", event,
                    f"passes {self._describe(origin)} to '{label}', which "
                    f"mutates its parameter '{param_name}' in place — pass "
                    f"a copy or make '{label}' pure")
            elif storage[0] == "param":
                caller_idx = storage[1]
                self.result.mutates.add(caller_idx)
                caller_param = (self.fn.params[caller_idx]
                                if caller_idx < len(self.fn.params)
                                else str(caller_idx))
                if self.fn.has_contract:
                    self._finding(
                        "RA804", event,
                        f"'{self.fn.qualname}' is shape-contract-checked "
                        f"but forwards its argument '{caller_param}' to "
                        f"'{label}', which mutates it in place — contract-"
                        f"checked arguments must stay read-only")
                elif SNAPSHOT_NAME_RE.search(caller_param):
                    self._finding(
                        "RA801", event,
                        f"forwards snapshot parameter '{caller_param}' to "
                        f"'{label}', which mutates its parameter "
                        f"'{param_name}' in place — snapshots are frozen; "
                        f"pass a copy")


def _witness_chain(summaries: Dict[str, FunctionSummary], fqn: str) -> str:
    """Human-readable path from a callee down to the concrete draw."""
    parts = [fqn.rsplit(".", 1)[-1]]
    current = fqn
    for _ in range(_MAX_WITNESS_HOPS):
        witness = summaries[current].rng_witness if current in summaries \
            else None
        if witness is None:
            break
        if witness[0] == "direct":
            parts.append(f"{witness[1]} at line {witness[2]}")
            break
        nxt = witness[1]
        if nxt == current:
            break
        parts.append(nxt.rsplit(".", 1)[-1])
        current = nxt
    return " -> ".join(parts)


# --------------------------------------------------------------------- #
# fixed point + SCC
# --------------------------------------------------------------------- #


def _tarjan_sccs(nodes: Sequence[str],
                 edges: Dict[str, List[str]]) -> List[List[str]]:
    """Iterative Tarjan; returns SCCs in deterministic order."""
    index_counter = [0]
    indices: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    sccs: List[List[str]] = []

    for root in nodes:
        if root in indices:
            continue
        work = [(root, iter(edges.get(root, ())))]
        indices[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in indices:
                    indices[succ] = lowlink[succ] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(edges.get(succ, ()))))
                    advanced = True
                    break
                if on_stack.get(succ):
                    lowlink[node] = min(lowlink[node], indices[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(sorted(scc))
    return sccs


def analyze_project(modules: Sequence[ModuleFacts]) -> ProjectAnalysis:
    """Build the index, iterate summaries to a fixed point, collect
    the raw RA80x findings and call cycles."""
    index = ProjectIndex(list(modules))
    order = sorted(index.functions)
    summaries: Dict[str, FunctionSummary] = {
        fqn: FunctionSummary() for fqn in order}

    for _ in range(_MAX_ITERATIONS):
        changed = False
        for fqn in order:
            mod, fn = index.functions[fqn]
            replay = _Replayer(index, mod, fqn, fn, summaries,
                               collect=False).run()
            new = replay.bits()
            if new != summaries[fqn]:
                summaries[fqn] = new
                changed = True
        if not changed:
            break

    analysis = ProjectAnalysis(index=index, summaries=summaries)
    adjacency: Dict[str, List[str]] = {}
    dynamic_sites: Dict[str, List[Tuple[int, int, str]]] = {}
    for fqn in order:
        mod, fn = index.functions[fqn]
        replay = _Replayer(index, mod, fqn, fn, summaries,
                           collect=True).run()
        analysis.raw_findings.extend(replay.findings)
        for callee_fqn, line in replay.edges:
            analysis.edges.append((fqn, callee_fqn, line))
            adjacency.setdefault(fqn, []).append(callee_fqn)
        if replay.dynamic_forwards:
            dynamic_sites[fqn] = replay.dynamic_forwards

    self_loops = {a for a, b, _line in analysis.edges if a == b}
    for scc in _tarjan_sccs(order, adjacency):
        if len(scc) < 2 and scc[0] not in self_loops:
            continue
        analysis.cycles.append(scc)
        sites = []
        for member in scc:
            mod, _fn = index.functions[member]
            for line, col, src in dynamic_sites.get(member, ()):
                sites.append((mod.path, line, col, src, member))
        if not sites:
            continue  # a resolved cycle: the fixed point handles it
        path, line, col, src, member = min(sites)
        display = " -> ".join(f.rsplit(".", 1)[-1] for f in scc)
        analysis.raw_findings.append(RawFinding(
            rule="RA805", path=path, line=line, col=col,
            message=(f"call cycle ({display}) forwards a parameter through "
                     f"a dynamic call in '{member.rsplit('.', 1)[-1]}' — "
                     f"summaries cannot converge soundly here; dispatch "
                     f"statically or break the cycle"),
            source=src))

    analysis.raw_findings.sort(
        key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    return analysis


# --------------------------------------------------------------------- #
# the deterministic summary cache
# --------------------------------------------------------------------- #


@lru_cache(maxsize=1)
def rules_signature() -> str:
    """SHA over the analysis package sources: any rule edit → cold cache."""
    package_dir = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for source in sorted(package_dir.glob("*.py")):
        digest.update(source.name.encode("utf-8"))
        digest.update(source.read_bytes())
    return digest.hexdigest()[:16]


def file_sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class SummaryCache:
    """JSON sidecar: per-file SHA -> (raw module findings, ModuleFacts).

    The payload is fully deterministic — facts serialize with sorted
    keys and findings in engine order — so two cold runs over the same
    tree produce byte-identical sidecars (asserted in CI).  Entries are
    pruned to the files touched by the current run on save.
    """

    VERSION = 1
    DEFAULT_NAME = ".repro-lint-cache.json"

    def __init__(self, path: Path):
        self.path = Path(path)
        self.signature = rules_signature()
        self.entries: Dict[str, Dict[str, Any]] = {}
        self.touched: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (raw.get("version") != self.VERSION
                or raw.get("rules_signature") != self.signature):
            return  # analysis package changed: every entry is invalid
        self.entries = raw.get("files", {})

    def lookup(self, display_path: str, sha: str
               ) -> Optional[Tuple[List[Dict[str, Any]], ModuleFacts]]:
        entry = self.entries.get(display_path)
        if entry is None or entry.get("sha") != sha:
            self.misses += 1
            return None
        self.hits += 1
        self.touched[display_path] = entry
        return (entry["findings"],
                ModuleFacts.from_dict(entry["facts"]))

    def store(self, display_path: str, sha: str,
              findings: List[Dict[str, Any]], facts: ModuleFacts) -> None:
        entry = {"sha": sha, "findings": findings,
                 "facts": facts.as_dict()}
        self.entries[display_path] = entry
        self.touched[display_path] = entry

    def save(self) -> None:
        payload = {
            "version": self.VERSION,
            "rules_signature": self.signature,
            "files": {path: self.touched[path]
                      for path in sorted(self.touched)},
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        try:
            self.path.write_text(text + "\n", encoding="utf-8")
        except OSError:
            pass  # read-only checkout: run uncached
