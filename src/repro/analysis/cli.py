"""Command line for the static analyzer.

Invocable three ways, all sharing this module:

* ``python -m repro.analysis [paths...]``
* ``repro lint [paths...]`` (subcommand of the main CLI)
* ``repro-lint [paths...]`` (console script)

Exit codes are deterministic: 0 = clean tree (baselined / noqa-suppressed
findings do not fail), 1 = actionable findings or unparseable files,
2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import Baseline, discover_baseline
from .core import RULE_REGISTRY
from .engine import analyze_paths, iter_python_files
from .summaries import SummaryCache


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based autograd-contract linter for this repository",
    )
    parser.add_argument("paths", nargs="*",
                        help="files/directories to analyze (default: src)")
    parser.add_argument("--format", choices=("text", "json", "github", "sarif"),
                        default="text", dest="fmt",
                        help="report format ('github' emits Actions "
                             "::error/::warning annotations; 'sarif' emits "
                             "SARIF 2.1.0 for code scanning)")
    parser.add_argument("--exclude", action="append", default=[],
                        metavar="NAME",
                        help="skip files under any directory component "
                             "NAME (repeatable; e.g. analysis_fixtures)")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline file (default: nearest "
                             "analysis-baseline.json above the scanned paths)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current findings to the baseline "
                             "file and exit 0")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="rewrite the baseline file dropping entries "
                             "that no longer fire, then exit 0")
    parser.add_argument("--fail-stale", action="store_true",
                        help="exit 1 if the baseline contains stale entries "
                             "(CI hygiene gate)")
    parser.add_argument("--call-graph", choices=("dot", "json"),
                        default=None, metavar="FMT",
                        help="print the interprocedural call graph "
                             "(dot|json) instead of the findings report")
    parser.add_argument("--cache", default=None, metavar="FILE",
                        help="summary-cache sidecar path (default: "
                             ".repro-lint-cache.json next to the baseline)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the summary cache for this run")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _format_rule_list() -> str:
    lines = []
    for rule in RULE_REGISTRY.values():
        lines.append(f"{rule.id}  {rule.name:<26} [{rule.severity}] "
                     f"{rule.summary}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        print(_format_rule_list())
        return 0

    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    select = args.select.split(",") if args.select else None
    try:
        files = iter_python_files(paths, exclude=args.exclude)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not files:
        print(f"error: no python files found under: {', '.join(paths)}",
              file=sys.stderr)
        return 2

    baseline = None
    baseline_path = None
    if not args.no_baseline:
        baseline_path = (Path(args.baseline) if args.baseline
                         else discover_baseline([Path(p) for p in paths]))
        if baseline_path is not None and baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except (ValueError, KeyError, OSError) as exc:
                print(f"error: invalid baseline {baseline_path}: {exc}",
                      file=sys.stderr)
                return 2

    cache = None
    if not args.no_cache and select is None:
        if args.cache:
            cache_path = Path(args.cache)
        else:
            anchor = baseline_path.parent if baseline_path is not None \
                else Path.cwd()
            cache_path = anchor / SummaryCache.DEFAULT_NAME
        cache = SummaryCache(cache_path)

    try:
        report = analyze_paths(paths, select=select, baseline=baseline,
                               exclude=args.exclude, cache=cache)
    except KeyError as exc:  # unknown --select rule id
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.call_graph:
        if report.project is None:
            print("error: --call-graph needs the RA80x rules in the run "
                  "(drop --select or include RA801-RA805)", file=sys.stderr)
            return 2
        if args.call_graph == "dot":
            print(report.project.graph_as_dot(), end="")
        else:
            print(json.dumps(report.project.graph_as_dict(), indent=2,
                             sort_keys=True))
        return 0

    if args.prune_baseline:
        if baseline is None:
            print("error: --prune-baseline needs a baseline file",
                  file=sys.stderr)
            return 2
        stale = {entry.fingerprint for entry in report.stale_baseline}
        baseline.entries = {fp: entry
                            for fp, entry in baseline.entries.items()
                            if fp not in stale}
        baseline.save(baseline.source)
        print(f"pruned {len(stale)} stale entr"
              f"{'y' if len(stale) == 1 else 'ies'}; "
              f"{len(baseline)} remain in {baseline.source}")
        return 0

    if args.write_baseline:
        target = baseline_path or Path(args.baseline or "analysis-baseline.json")
        merged = Baseline.from_findings(report.findings + report.baselined)
        if baseline is not None:
            # keep existing justifications for entries that still match
            for fp, entry in baseline.entries.items():
                if fp in merged.entries and entry.justification:
                    merged.entries[fp] = entry
        merged.save(target)
        print(f"wrote {len(merged)} baseline entr"
              f"{'y' if len(merged) == 1 else 'ies'} to {target}")
        return 0

    from .reporters import render_github, render_json, render_sarif, render_text

    renderer = {"json": render_json, "github": render_github,
                "sarif": render_sarif, "text": render_text}[args.fmt]
    print(renderer(report))
    if args.fail_stale and report.stale_baseline and report.exit_code == 0:
        print(f"error: {len(report.stale_baseline)} stale baseline "
              f"entr{'y' if len(report.stale_baseline) == 1 else 'ies'} "
              f"(run --prune-baseline)", file=sys.stderr)
        return 1
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
