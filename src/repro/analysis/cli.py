"""Command line for the static analyzer.

Invocable three ways, all sharing this module:

* ``python -m repro.analysis [paths...]``
* ``repro lint [paths...]`` (subcommand of the main CLI)
* ``repro-lint [paths...]`` (console script)

Exit codes are deterministic: 0 = clean tree (baselined / noqa-suppressed
findings do not fail), 1 = actionable findings or unparseable files,
2 = usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import Baseline, discover_baseline
from .core import RULE_REGISTRY
from .engine import analyze_paths, iter_python_files


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based autograd-contract linter for this repository",
    )
    parser.add_argument("paths", nargs="*",
                        help="files/directories to analyze (default: src)")
    parser.add_argument("--format", choices=("text", "json", "github"),
                        default="text", dest="fmt",
                        help="report format ('github' emits Actions "
                             "::error/::warning annotations)")
    parser.add_argument("--exclude", action="append", default=[],
                        metavar="NAME",
                        help="skip files under any directory component "
                             "NAME (repeatable; e.g. analysis_fixtures)")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline file (default: nearest "
                             "analysis-baseline.json above the scanned paths)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current findings to the baseline "
                             "file and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _format_rule_list() -> str:
    lines = []
    for rule in RULE_REGISTRY.values():
        lines.append(f"{rule.id}  {rule.name:<26} [{rule.severity}] "
                     f"{rule.summary}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        print(_format_rule_list())
        return 0

    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    select = args.select.split(",") if args.select else None
    try:
        files = iter_python_files(paths, exclude=args.exclude)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not files:
        print(f"error: no python files found under: {', '.join(paths)}",
              file=sys.stderr)
        return 2

    baseline = None
    baseline_path = None
    if not args.no_baseline:
        baseline_path = (Path(args.baseline) if args.baseline
                         else discover_baseline([Path(p) for p in paths]))
        if baseline_path is not None and baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except (ValueError, KeyError, OSError) as exc:
                print(f"error: invalid baseline {baseline_path}: {exc}",
                      file=sys.stderr)
                return 2

    try:
        report = analyze_paths(paths, select=select, baseline=baseline,
                               exclude=args.exclude)
    except KeyError as exc:  # unknown --select rule id
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = baseline_path or Path(args.baseline or "analysis-baseline.json")
        merged = Baseline.from_findings(report.findings + report.baselined)
        if baseline is not None:
            # keep existing justifications for entries that still match
            for fp, entry in baseline.entries.items():
                if fp in merged.entries and entry.justification:
                    merged.entries[fp] = entry
        merged.save(target)
        print(f"wrote {len(merged)} baseline entr"
              f"{'y' if len(merged) == 1 else 'ies'} to {target}")
        return 0

    from .reporters import render_github, render_json, render_text

    renderer = {"json": render_json, "github": render_github,
                "text": render_text}[args.fmt]
    print(renderer(report))
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
