"""Committed baseline of grandfathered findings.

A baseline entry exempts one existing finding (matched by its
:meth:`repro.analysis.core.Finding.fingerprint`) from failing the run,
with a mandatory one-line justification.  New code never gets a
baseline entry — fix the finding or suppress it inline with an
explained ``# repro: noqa[RULE]``.

The file (``analysis-baseline.json`` at the repository root) is JSON so
diffs stay reviewable::

    {
      "version": 1,
      "findings": [
        {"fingerprint": "…", "rule": "RA102", "path": "src/…",
         "justification": "teacher logits are constants by design"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .core import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "analysis-baseline.json"


@dataclass
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str
    justification: str = ""

    def as_dict(self) -> Dict[str, str]:
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """Fingerprint-keyed set of grandfathered findings."""

    entries: Dict[str, BaselineEntry] = field(default_factory=dict)
    source: Optional[Path] = None

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        raw = json.loads(Path(path).read_text())
        if raw.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {raw.get('version')!r} "
                f"in {path}")
        entries = {}
        for item in raw.get("findings", []):
            entry = BaselineEntry(
                fingerprint=item["fingerprint"],
                rule=item.get("rule", ""),
                path=item.get("path", ""),
                justification=item.get("justification", ""),
            )
            entries[entry.fingerprint] = entry
        return cls(entries=entries, source=Path(path))

    @classmethod
    def from_findings(cls, findings: Sequence[Finding],
                      justification: str = "grandfathered; fix or justify"
                      ) -> "Baseline":
        entries = {}
        for f in findings:
            fp = f.fingerprint()
            entries[fp] = BaselineEntry(
                fingerprint=fp, rule=f.rule, path=f.path,
                justification=justification)
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "tool": "repro.analysis",
            "findings": [e.as_dict() for _, e in sorted(self.entries.items())],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def stale_entries(self, matched: Sequence[str]) -> List[BaselineEntry]:
        """Entries whose finding no longer exists (candidates for removal)."""
        matched_set = set(matched)
        return [e for fp, e in sorted(self.entries.items())
                if fp not in matched_set]


def discover_baseline(paths: Sequence[Path]) -> Optional[Path]:
    """Walk up from each scanned path; first ``analysis-baseline.json`` wins."""
    for start in paths:
        current = Path(start).resolve()
        if current.is_file():
            current = current.parent
        for directory in [current, *current.parents]:
            candidate = directory / DEFAULT_BASELINE_NAME
            if candidate.is_file():
                return candidate
    return None
