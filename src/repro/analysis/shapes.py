"""RA5xx — the symbolic shape/dtype contract checker.

The rules in this module consume the same ``@shape_contract`` spec
strings the runtime checker enforces (:mod:`repro.contracts`), and
propagate *symbolic* dimensions through the straight-line dataflow of
each decorated function:

* contract dimension names (``B``, ``K``, ``D``…) become **skolem
  constants** — distinct unless the contract says otherwise, so an
  operation forcing ``K = T`` (a transposed matmul operand, a
  reduce-then-broadcast slip) is a contradiction;
* calling another contracted function **instantiates** its contract with
  fresh unification variables, so shape errors surface at call
  boundaries without inter-procedural analysis;
* anything the propagator cannot follow — branches, loops, fancy
  indexing, unannotated callees — becomes **unknown**, the sound
  fallback that never produces a false positive on code it can't see.

Rules
-----
RA501  shape contradiction inside a decorated function (matmul inner
       dims, elementwise broadcast, return shape vs. contract)
RA502  invalid ``@shape_contract`` spec (parse error, arity mismatch)
RA503  call-site mismatch against a contracted callee
RA504  dtype contradiction against a declared dtype class (warning)
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..contracts.runtime import EXTERNAL_CONTRACTS
from ..contracts.spec import (
    AnyDim,
    Contract,
    ContractParseError,
    EllipsisDim,
    FixedDim,
    SkipSpec,
    SymDim,
    TensorSpec,
    parse_contract,
)
from .core import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    ModuleContext,
    Rule,
    register,
)
from .rules import dotted_name, terminal_name

# --------------------------------------------------------------------- #
# symbolic dimensions
# --------------------------------------------------------------------- #


class _Unknown:
    """A dimension (or whole shape) the analysis cannot follow."""

    def __repr__(self) -> str:
        return "?"


UNKNOWN = _Unknown()


class Var:
    """A bindable unification variable (callee instantiation, outputs)."""

    __slots__ = ("hint", "bound")

    def __init__(self, hint: str = "_"):
        self.hint = hint
        self.bound: Optional["DimT"] = None

    def __repr__(self) -> str:
        return f"{self.hint}?"


#: a symbolic dim: concrete int, skolem name (str), Var, or UNKNOWN
DimT = Union[int, str, Var, _Unknown]
#: a symbolic shape: tuple of dims, or None when wholly unknown
ShapeT = Optional[Tuple[DimT, ...]]


def _resolve(dim: DimT) -> DimT:
    while isinstance(dim, Var) and dim.bound is not None:
        dim = dim.bound
    return dim


def _render_dim(dim: DimT) -> str:
    dim = _resolve(dim)
    if isinstance(dim, Var):
        return f"{dim.hint}?"
    return repr(dim) if isinstance(dim, _Unknown) else str(dim)


def _render_shape(shape: ShapeT) -> str:
    if shape is None:
        return "(?)"
    return "(" + ", ".join(_render_dim(d) for d in shape) + ")"


def _unify_exact(a: DimT, b: DimT) -> Tuple[bool, DimT]:
    """Unify two dims that must be equal.  Returns (ok, result dim).

    Two distinct skolems — or two distinct ints — are a contradiction;
    a skolem against an int is unprovable either way, so it degrades to
    UNKNOWN without complaint (soundness over completeness).
    """
    a, b = _resolve(a), _resolve(b)
    if a is UNKNOWN or b is UNKNOWN:
        return True, UNKNOWN
    if isinstance(a, Var):
        a.bound = b
        return True, b
    if isinstance(b, Var):
        b.bound = a
        return True, a
    if a == b:
        return True, a
    if isinstance(a, int) and isinstance(b, int):
        return False, UNKNOWN
    if isinstance(a, str) and isinstance(b, str):
        return False, UNKNOWN
    return True, UNKNOWN  # skolem vs int: cannot prove a mismatch


def _unify_broadcast(a: DimT, b: DimT) -> Tuple[bool, DimT]:
    """Unify two dims under numpy broadcasting (literal 1 stretches)."""
    a, b = _resolve(a), _resolve(b)
    if a == 1:
        return True, b
    if b == 1:
        return True, a
    return _unify_exact(a, b)


# --------------------------------------------------------------------- #
# symbolic values
# --------------------------------------------------------------------- #

_FLOAT_CLASSES = ("f", "f32", "f64")
_INT_CLASSES = ("i", "i32", "i64")


@dataclass
class Value:
    """What the analyzer knows about one expression."""

    shape: ShapeT = None
    dtype: Optional[str] = None        # one of the DSL dtype tokens
    elements: Optional[Tuple["Value", ...]] = None  # literal/multi-out tuples


_UNKNOWN_VALUE = Value()


def _dtype_conflict(declared: Optional[str], actual: Optional[str]) -> bool:
    """Provable dtype contradiction between a dtype class and a value."""
    if declared in (None, "any") or actual in (None, "any"):
        return False
    d_fam = ("f" if declared in _FLOAT_CLASSES
             else "i" if declared in _INT_CLASSES else declared)
    a_fam = ("f" if actual in _FLOAT_CLASSES
             else "i" if actual in _INT_CLASSES else actual)
    if d_fam != a_fam:
        return True
    # same family: only a conflict when both widths are pinned
    return (declared != actual
            and declared not in ("f", "i") and actual not in ("f", "i"))


def _promote_dtype(a: Optional[str], b: Optional[str]) -> Optional[str]:
    if a is None or b is None:
        return None
    if a == b:
        return a
    if "f64" in (a, b):
        return "f64"
    if a in _FLOAT_CLASSES and b in _FLOAT_CLASSES:
        return "f"
    if a in _FLOAT_CLASSES:
        return a
    if b in _FLOAT_CLASSES:
        return b
    return None


# --------------------------------------------------------------------- #
# decorated-function discovery
# --------------------------------------------------------------------- #


@dataclass
class DecoratedFn:
    node: ast.FunctionDef
    decorator: ast.expr
    contract: Contract
    arg_names: Tuple[str, ...]
    spec_error: Optional[str] = None
    arity_error: Optional[str] = None


def _contract_decorator(fn: ast.FunctionDef) -> Optional[Tuple[ast.expr, Optional[str]]]:
    """(decorator node, spec string or None-if-dynamic) when present."""
    for deco in fn.decorator_list:
        if isinstance(deco, ast.Call) and terminal_name(deco.func) == "shape_contract":
            if deco.args and isinstance(deco.args[0], ast.Constant) \
                    and isinstance(deco.args[0].value, str):
                return deco, deco.args[0].value
            return deco, None
    return None


def _checkable_params(fn: ast.FunctionDef) -> List[str]:
    args = [a.arg for a in fn.args.posonlyargs + fn.args.args]
    if args and args[0] in ("self", "cls"):
        args = args[1:]
    return args


def decorated_functions(ctx: ModuleContext) -> List[DecoratedFn]:
    """Every ``@shape_contract``-decorated function in the module."""
    out: List[DecoratedFn] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        found = _contract_decorator(node)
        if found is None:
            continue
        deco, spec = found
        if spec is None:
            continue  # dynamic spec: nothing to check statically
        try:
            contract = parse_contract(spec)
        except ContractParseError as exc:
            out.append(DecoratedFn(node, deco, Contract((), ()), (),
                                   spec_error=str(exc)))
            continue
        params = _checkable_params(node)
        entry = DecoratedFn(node, deco, contract,
                            tuple(params[:len(contract.inputs)]))
        if len(contract.inputs) > len(params):
            entry.arity_error = (
                f"contract declares {len(contract.inputs)} argument spec(s) "
                f"but '{node.name}' only has {len(params)} checkable "
                f"parameter(s)")
        out.append(entry)
    return out


def _local_contract_table(decorated: Sequence[DecoratedFn]
                          ) -> Dict[str, DecoratedFn]:
    """bare function name -> contract, dropping ambiguous duplicates."""
    table: Dict[str, DecoratedFn] = {}
    dropped = set()
    for entry in decorated:
        if entry.spec_error or entry.arity_error:
            continue
        name = entry.node.name
        if name in table and table[name].contract.spec != entry.contract.spec:
            dropped.add(name)
        table[name] = entry
    for name in dropped:
        table.pop(name, None)
    return table


# --------------------------------------------------------------------- #
# the propagator
# --------------------------------------------------------------------- #

_ELEMENTWISE_METHODS = frozenset(
    {"exp", "log", "log1p", "sqrt", "abs", "tanh", "sigmoid", "relu",
     "clip", "copy", "detach", "numpy", "round", "conj"})
_REDUCE_METHODS = frozenset(
    {"sum", "mean", "max", "min", "prod", "std", "var", "norm",
     "argmax", "argmin", "all", "any"})
_NP_ELEMENTWISE = frozenset(
    {"exp", "log", "log1p", "log2", "sqrt", "abs", "fabs", "tanh", "sin",
     "cos", "sign", "floor", "ceil", "negative", "isnan", "isfinite",
     "isinf", "logical_not", "clip", "ascontiguousarray"})
_NP_BROADCAST2 = frozenset(
    {"maximum", "minimum", "add", "subtract", "multiply", "divide",
     "power", "hypot", "logaddexp", "fmax", "fmin"})
_NP_REDUCE = frozenset(
    {"sum", "mean", "max", "min", "amax", "amin", "prod", "std", "var",
     "median", "argmax", "argmin", "count_nonzero", "all", "any"})


_CONTROL_FLOW_STMTS = tuple(
    getattr(ast, name) for name in
    ("If", "For", "AsyncFor", "While", "Try", "TryStar", "Match")
    if hasattr(ast, name))


class _FunctionShapeChecker:
    """Symbolic propagation through one decorated function body."""

    def __init__(self, ctx: ModuleContext, entry: DecoratedFn,
                 local: Dict[str, DecoratedFn],
                 sink: List[Tuple[str, ast.AST, str]]):
        self.ctx = ctx
        self.entry = entry
        self.fn = entry.node
        self.local = local
        self.sink = sink
        self.env: Dict[str, Value] = {}
        # output-only contract symbols become shared bindable variables
        input_syms = set(entry.contract.input_symbols())
        self.output_vars: Dict[str, Var] = {
            name: Var(name)
            for name in entry.contract.symbol_names()
            if name not in input_syms and not name.startswith("...")
        }
        self._seed_parameters()

    # -- plumbing ------------------------------------------------------ #

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.sink.append((rule, node, f"in '{self.fn.name}': {message}"))

    def _seed_parameters(self) -> None:
        for name, spec in zip(self.entry.arg_names,
                              self.entry.contract.inputs):
            self.env[name] = self._value_from_spec(spec, skolem=True)

    def _value_from_spec(self, spec, skolem: bool) -> Value:
        if not isinstance(spec, TensorSpec):
            return _UNKNOWN_VALUE
        if spec.ellipsis_index is not None:
            # variadic shapes are not propagated symbolically (sound)
            return Value(shape=None, dtype=self._spec_dtype(spec))
        dims: List[DimT] = []
        for dim in spec.dims:
            if isinstance(dim, SymDim):
                if skolem:
                    dims.append(dim.name)
                else:
                    dims.append(self.output_vars.get(dim.name, UNKNOWN))
            elif isinstance(dim, FixedDim):
                dims.append(dim.value)
            else:
                dims.append(UNKNOWN)
        return Value(shape=tuple(dims), dtype=self._spec_dtype(spec))

    @staticmethod
    def _spec_dtype(spec: TensorSpec) -> Optional[str]:
        return None if spec.dtype == "any" else spec.dtype

    # -- statement walk ------------------------------------------------ #

    def run(self) -> None:
        self._exec_block(self.fn.body)

    def _exec_block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                value = self._eval(stmt.value)
                if len(stmt.targets) == 1:
                    self._bind_target(stmt.targets[0], value)
                else:
                    for target in stmt.targets:
                        self._invalidate(target)
            elif isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None:
                    self._bind_target(stmt.target, self._eval(stmt.value))
            elif isinstance(stmt, ast.AugAssign):
                value = self._eval(stmt.value)
                if isinstance(stmt.target, ast.Name):
                    current = self.env.get(stmt.target.id, _UNKNOWN_VALUE)
                    if isinstance(stmt.op, ast.MatMult):
                        self.env[stmt.target.id] = self._matmul(
                            current, value, stmt)
                    else:
                        self.env[stmt.target.id] = self._broadcast(
                            current, value, stmt)
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    self._check_return(stmt)
            elif isinstance(stmt, ast.Expr):
                self._eval(stmt.value)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        self._invalidate(item.optional_vars)
                self._exec_block(stmt.body)
            elif isinstance(stmt, _CONTROL_FLOW_STMTS):
                # control flow: everything assigned inside becomes unknown
                self._invalidate(stmt)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                self.env[stmt.name] = _UNKNOWN_VALUE
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.env.pop(target.id, None)
            # Pass/Assert/Raise/Import/Global/Nonlocal: no dataflow effect

    def _bind_target(self, target: ast.expr, value: Value) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, ast.Tuple) and value.elements is not None \
                and len(target.elts) == len(value.elements):
            for elt, sub in zip(target.elts, value.elements):
                self._bind_target(elt, sub)
        elif isinstance(target, (ast.Tuple, ast.List, ast.Starred)):
            self._invalidate(target)
        # Subscript/Attribute stores don't change a tracked shape

    def _invalidate(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                self.env[sub.id] = _UNKNOWN_VALUE

    # -- return checking ----------------------------------------------- #

    def _check_return(self, stmt: ast.Return) -> None:
        outputs = self.entry.contract.outputs
        value = self._eval(stmt.value)
        if len(outputs) > 1:
            if value.elements is None:
                if isinstance(stmt.value, ast.Tuple):
                    self._emit("RA501", stmt,
                               f"contract declares {len(outputs)} outputs "
                               f"but the return tuple has "
                               f"{len(stmt.value.elts)} element(s)")
                return
            if len(value.elements) != len(outputs):
                self._emit("RA501", stmt,
                           f"contract declares {len(outputs)} outputs but "
                           f"the return tuple has {len(value.elements)} "
                           f"element(s)")
                return
            pairs = list(zip(outputs, value.elements))
        else:
            pairs = [(outputs[0], value)]
        for i, (spec, val) in enumerate(pairs):
            if not isinstance(spec, TensorSpec):
                continue
            where = ("return value" if len(pairs) == 1
                     else f"return value [{i}]")
            self._match_spec(spec, val, stmt, where, rule="RA501",
                             skolem_inputs=True)

    def _match_spec(self, spec: TensorSpec, value: Value, node: ast.AST,
                    where: str, rule: str, skolem_inputs: bool,
                    mapping: Optional[Dict[str, Var]] = None) -> None:
        """Unify a value against a spec, emitting findings on conflicts."""
        if _dtype_conflict(self._spec_dtype(spec), value.dtype):
            self._emit("RA504", node,
                       f"{where} has dtype class '{value.dtype}' but the "
                       f"contract declares '{spec.dtype}'")
        if value.shape is None:
            return
        dims = spec.dims
        ell = spec.ellipsis_index
        if ell is None:
            if len(value.shape) != len(dims):
                self._emit(rule, node,
                           f"{where} has {len(value.shape)} dim(s) "
                           f"{_render_shape(value.shape)} but the contract "
                           f"declares {len(dims)}: {spec}")
                return
            pairs = list(zip(dims, value.shape))
        else:
            if len(value.shape) < spec.min_ndim:
                self._emit(rule, node,
                           f"{where} has {len(value.shape)} dim(s) "
                           f"{_render_shape(value.shape)} but the contract "
                           f"requires at least {spec.min_ndim}: {spec}")
                return
            head = dims[:ell]
            tail = dims[ell + 1:]
            pairs = list(zip(head, value.shape[:len(head)]))
            if tail:
                pairs += list(zip(tail, value.shape[-len(tail):]))
        for dim, actual in pairs:
            declared = self._spec_dim(dim, skolem_inputs, mapping)
            ok, _ = _unify_exact(declared, actual)
            if not ok:
                self._emit(rule, node,
                           f"{where} shape {_render_shape(value.shape)} "
                           f"contradicts declared {spec}: dim "
                           f"'{_render_dim(declared)}' vs "
                           f"'{_render_dim(actual)}'")
                return

    def _spec_dim(self, dim, skolem_inputs: bool,
                  mapping: Optional[Dict[str, Var]]) -> DimT:
        if isinstance(dim, FixedDim):
            return dim.value
        if isinstance(dim, SymDim):
            if mapping is not None:
                return mapping.setdefault(dim.name, Var(dim.name))
            if skolem_inputs and dim.name not in self.output_vars:
                return dim.name
            return self.output_vars.get(dim.name, UNKNOWN)
        return UNKNOWN

    # -- expression evaluation ----------------------------------------- #

    def _eval(self, node: ast.expr) -> Value:
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return _UNKNOWN_VALUE

    def _eval_Name(self, node: ast.Name) -> Value:
        return self.env.get(node.id, _UNKNOWN_VALUE)

    def _eval_Constant(self, node: ast.Constant) -> Value:
        if isinstance(node.value, bool):
            return Value(shape=(), dtype="b")
        if isinstance(node.value, (int, float)):
            # dtype None: python scalars follow value-based casting
            return Value(shape=())
        return _UNKNOWN_VALUE

    def _eval_Tuple(self, node: ast.Tuple) -> Value:
        return Value(elements=tuple(self._eval(e) for e in node.elts))

    def _eval_UnaryOp(self, node: ast.UnaryOp) -> Value:
        operand = self._eval(node.operand)
        if isinstance(node.op, ast.Not):
            return Value(shape=operand.shape, dtype="b")
        return operand

    def _eval_BinOp(self, node: ast.BinOp) -> Value:
        left = self._eval(node.left)
        right = self._eval(node.right)
        if isinstance(node.op, ast.MatMult):
            return self._matmul(left, right, node)
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div,
                                ast.FloorDiv, ast.Mod, ast.Pow)):
            return self._broadcast(left, right, node)
        return _UNKNOWN_VALUE

    def _eval_Compare(self, node: ast.Compare) -> Value:
        value = self._eval(node.left)
        for comparator in node.comparators:
            value = self._broadcast(value, self._eval(comparator), node)
        return Value(shape=value.shape, dtype="b")

    def _eval_BoolOp(self, node: ast.BoolOp) -> Value:
        for sub in node.values:
            self._eval(sub)
        return _UNKNOWN_VALUE

    def _eval_IfExp(self, node: ast.IfExp) -> Value:
        self._eval(node.test)
        a = self._eval(node.body)
        b = self._eval(node.orelse)
        if a.shape is not None and a.shape == b.shape:
            return Value(shape=a.shape, dtype=_promote_dtype(a.dtype, b.dtype))
        return _UNKNOWN_VALUE

    def _eval_Attribute(self, node: ast.Attribute) -> Value:
        if node.attr == "T":
            recv = self._eval(node.value)
            if recv.shape is not None:
                return Value(shape=tuple(reversed(recv.shape)),
                             dtype=recv.dtype)
            return Value(dtype=recv.dtype)
        if node.attr == "data":
            return self._eval(node.value)
        if node.attr in ("ndim", "size"):
            return Value(shape=(), dtype="i")
        return _UNKNOWN_VALUE

    def _eval_Subscript(self, node: ast.Subscript) -> Value:
        # x.shape[i] is a scalar int, whatever i is
        if isinstance(node.value, ast.Attribute) and node.value.attr == "shape":
            self._eval(node.value.value)
            return Value(shape=(), dtype="i")
        recv = self._eval(node.value)
        if recv.elements is not None and isinstance(node.slice, ast.Constant) \
                and isinstance(node.slice.value, int):
            idx = node.slice.value
            if -len(recv.elements) <= idx < len(recv.elements):
                return recv.elements[idx]
        if recv.shape is None:
            self._eval_index_side_effects(node.slice)
            return _UNKNOWN_VALUE
        parts = (list(node.slice.elts) if isinstance(node.slice, ast.Tuple)
                 else [node.slice])
        out: List[DimT] = []
        axis = 0
        for part in parts:
            if isinstance(part, ast.Constant) and part.value is None:
                out.append(1)
                continue
            if axis >= len(recv.shape):
                return _UNKNOWN_VALUE
            if isinstance(part, ast.Slice):
                if part.lower is None and part.upper is None \
                        and part.step is None:
                    out.append(recv.shape[axis])
                else:
                    for sub in (part.lower, part.upper, part.step):
                        if sub is not None:
                            self._eval(sub)
                    out.append(UNKNOWN)
                axis += 1
                continue
            if isinstance(part, ast.Constant) and isinstance(part.value, int):
                axis += 1  # integer index drops the axis
                continue
            index = self._eval(part)
            if index.shape == ():
                axis += 1  # scalar variable index drops the axis
                continue
            if index.dtype == "b" and index.shape is not None \
                    and len(index.shape) == 1 and len(parts) == 1:
                out.append(UNKNOWN)  # 1-D boolean mask over the first axis
                axis += 1
                continue
            return _UNKNOWN_VALUE  # fancy indexing: give up soundly
        out.extend(recv.shape[axis:])
        return Value(shape=tuple(out), dtype=recv.dtype)

    def _eval_index_side_effects(self, node: ast.expr) -> None:
        if isinstance(node, ast.Tuple):
            for elt in node.elts:
                self._eval_index_side_effects(elt)
        elif isinstance(node, ast.Slice):
            for sub in (node.lower, node.upper, node.step):
                if sub is not None:
                    self._eval(sub)
        else:
            self._eval(node)

    # -- operators ------------------------------------------------------ #

    def _broadcast(self, left: Value, right: Value,
                   node: ast.AST) -> Value:
        dtype = _promote_dtype(left.dtype, right.dtype)
        if left.shape is None or right.shape is None:
            return Value(dtype=dtype)
        a, b = left.shape, right.shape
        out: List[DimT] = []
        for i in range(1, max(len(a), len(b)) + 1):
            da = a[-i] if i <= len(a) else 1
            db = b[-i] if i <= len(b) else 1
            ok, dim = _unify_broadcast(da, db)
            if not ok:
                self._emit("RA501", node,
                           f"elementwise operands {_render_shape(a)} and "
                           f"{_render_shape(b)} cannot broadcast: dim "
                           f"'{_render_dim(da)}' vs '{_render_dim(db)}'")
                return Value(dtype=dtype)
            out.append(dim)
        return Value(shape=tuple(reversed(out)), dtype=dtype)

    def _matmul(self, left: Value, right: Value, node: ast.AST) -> Value:
        dtype = _promote_dtype(left.dtype, right.dtype)
        if left.shape is None or right.shape is None:
            return Value(dtype=dtype)
        a, b = left.shape, right.shape
        if len(a) == 0 or len(b) == 0:
            return Value(dtype=dtype)
        def fail(da: DimT, db: DimT) -> Value:
            self._emit("RA501", node,
                       f"matmul inner dimensions disagree: "
                       f"{_render_shape(a)} @ {_render_shape(b)} "
                       f"('{_render_dim(da)}' vs '{_render_dim(db)}')")
            return Value(dtype=dtype)
        if len(a) == 1 and len(b) == 1:
            ok, _ = _unify_exact(a[0], b[0])
            return Value(shape=(), dtype=dtype) if ok else fail(a[0], b[0])
        if len(b) == 1:
            ok, _ = _unify_exact(a[-1], b[0])
            return (Value(shape=a[:-1], dtype=dtype) if ok
                    else fail(a[-1], b[0]))
        if len(a) == 1:
            ok, _ = _unify_exact(a[0], b[-2])
            return (Value(shape=b[:-2] + (b[-1],), dtype=dtype) if ok
                    else fail(a[0], b[-2]))
        ok, _ = _unify_exact(a[-1], b[-2])
        if not ok:
            return fail(a[-1], b[-2])
        batch = self._broadcast(Value(shape=a[:-2]), Value(shape=b[:-2]),
                                node)
        if batch.shape is None:
            return Value(dtype=dtype)
        return Value(shape=batch.shape + (a[-2], b[-1]), dtype=dtype)

    # -- calls ---------------------------------------------------------- #

    def _eval_Call(self, node: ast.Call) -> Value:
        argvals = [self._eval(a) for a in node.args
                   if not isinstance(a, ast.Starred)]
        kwvals = {kw.arg: self._eval(kw.value) for kw in node.keywords
                  if kw.arg is not None}
        name = terminal_name(node.func)
        dotted = dotted_name(node.func)

        # numpy namespace --------------------------------------------- #
        if dotted is not None and dotted.split(".", 1)[0] in ("np", "numpy"):
            result = self._eval_numpy(node, dotted, argvals, kwvals)
            if result is not _UNKNOWN_VALUE:
                return result
            # not natively modelled: fall back to a registered external
            # contract (e.g. np.outer) so call sites are still unified
            external = self._external_contract(dotted)
            if external is not None:
                return self._apply_external(node, dotted, external, argvals)
            return result

        # contracted local callees ------------------------------------ #
        if isinstance(node.func, ast.Name) and node.func.id in self.local \
                and node.func.id != self.fn.name:
            return self._apply_contract(node, self.local[node.func.id],
                                        argvals, kwvals)

        # registered external contracts ------------------------------- #
        external = self._external_contract(dotted)
        if external is not None:
            return self._apply_external(node, dotted, external, argvals)

        # substrate constructors / conversions ------------------------ #
        if name == "Tensor" and len(argvals) >= 1:
            return Value(shape=argvals[0].shape, dtype="f64")
        if name in ("concat", "concatenate", "stack"):
            return self._eval_concat(node, name)
        if name in ("int", "len", "round"):
            return Value(shape=(), dtype="i")
        if name == "float":
            return Value(shape=(), dtype="f64")
        if name == "bool":
            return Value(shape=(), dtype="b")

        # method calls on a known-value receiver ----------------------- #
        if isinstance(node.func, ast.Attribute):
            recv = self._eval(node.func.value)
            return self._eval_method(node, node.func.attr, recv, argvals,
                                     kwvals)
        return _UNKNOWN_VALUE

    def _external_contract(self, dotted: Optional[str]) -> Optional[Contract]:
        if dotted is None:
            return None
        candidates = [dotted]
        if dotted.startswith("numpy."):
            candidates.append("np." + dotted[len("numpy."):])
        elif dotted.startswith("np."):
            candidates.append("numpy." + dotted[len("np."):])
        for key in candidates:
            spec = EXTERNAL_CONTRACTS.get(key)
            if spec is not None:
                try:
                    return parse_contract(spec)
                except ContractParseError:
                    return None
        return None

    def _apply_contract(self, node: ast.Call, callee: DecoratedFn,
                        argvals: List[Value],
                        kwvals: Dict[str, Value]) -> Value:
        contract = callee.contract
        mapping: Dict[str, Var] = {}
        # positional args, then keywords matched to the callee's params
        supplied: List[Tuple[int, Value]] = list(enumerate(argvals))
        for kw_name, val in kwvals.items():
            if kw_name in callee.arg_names:
                supplied.append((callee.arg_names.index(kw_name), val))
        for index, val in supplied:
            if index >= len(contract.inputs):
                continue
            spec = contract.inputs[index]
            if not isinstance(spec, TensorSpec):
                continue
            arg_label = (callee.arg_names[index]
                         if index < len(callee.arg_names) else str(index))
            self._match_spec(
                spec, val, node,
                f"argument '{arg_label}' of contracted "
                f"'{callee.node.name}'",
                rule="RA503", skolem_inputs=False, mapping=mapping)
        return self._contract_outputs(contract, mapping)

    def _apply_external(self, node: ast.Call, dotted: str,
                        contract: Contract,
                        argvals: List[Value]) -> Value:
        mapping: Dict[str, Var] = {}
        for index, val in enumerate(argvals):
            if index >= len(contract.inputs):
                break
            spec = contract.inputs[index]
            if not isinstance(spec, TensorSpec):
                continue
            self._match_spec(
                spec, val, node,
                f"argument {index} of '{dotted}'",
                rule="RA503", skolem_inputs=False, mapping=mapping)
        return self._contract_outputs(contract, mapping)

    def _contract_outputs(self, contract: Contract,
                          mapping: Dict[str, Var]) -> Value:
        outs: List[Value] = []
        for spec in contract.outputs:
            if not isinstance(spec, TensorSpec) \
                    or spec.ellipsis_index is not None:
                outs.append(_UNKNOWN_VALUE)
                continue
            dims: List[DimT] = []
            for dim in spec.dims:
                if isinstance(dim, SymDim):
                    resolved = _resolve(mapping.setdefault(dim.name,
                                                           Var(dim.name)))
                    dims.append(UNKNOWN if isinstance(resolved, Var)
                                else resolved)
                elif isinstance(dim, FixedDim):
                    dims.append(dim.value)
                else:
                    dims.append(UNKNOWN)
            outs.append(Value(shape=tuple(dims),
                              dtype=self._spec_dtype(spec)))
        if len(outs) == 1:
            return outs[0]
        return Value(elements=tuple(outs))

    # -- numpy modelling ------------------------------------------------ #

    def _eval_numpy(self, node: ast.Call, dotted: str,
                    argvals: List[Value],
                    kwvals: Dict[str, Value]) -> Value:
        tail = dotted.split(".", 1)[1] if "." in dotted else ""
        first = argvals[0] if argvals else _UNKNOWN_VALUE
        if tail in _NP_ELEMENTWISE:
            return first
        if tail in _NP_BROADCAST2 and len(argvals) >= 2:
            return self._broadcast(argvals[0], argvals[1], node)
        if tail == "where" and len(argvals) == 3:
            out = self._broadcast(argvals[1], argvals[2], node)
            return self._broadcast(argvals[0], out, node)
        if tail in _NP_REDUCE and argvals:
            reduced = self._reduce(first, node)
            if tail in ("argmax", "argmin", "count_nonzero", "all", "any"):
                return Value(shape=reduced.shape,
                             dtype="i" if tail.startswith(("arg", "count"))
                             else "b")
            return reduced
        if tail in ("asarray", "array"):
            dtype = self._dtype_from_kw(node)
            return Value(shape=first.shape, dtype=dtype or first.dtype)
        if tail in ("zeros", "ones", "empty", "full"):
            shape = self._shape_literal(node.args[0]) if node.args else None
            dtype = self._dtype_from_kw(node) or "f64"
            return Value(shape=shape, dtype=dtype)
        if tail in ("zeros_like", "ones_like", "empty_like", "full_like"):
            return Value(shape=first.shape,
                         dtype=self._dtype_from_kw(node) or first.dtype)
        if tail == "linalg.norm":
            return self._reduce(first, node)
        if tail == "linalg.svd":
            return self._eval_svd(node, first)
        if tail == "linalg.pinv":
            if first.shape is not None and len(first.shape) == 2:
                return Value(shape=(first.shape[1], first.shape[0]),
                             dtype=first.dtype)
            return _UNKNOWN_VALUE
        if tail == "linalg.inv":
            return first
        if tail in ("concatenate", "vstack", "hstack", "stack"):
            return self._eval_concat(node, tail)
        if tail == "dot" and len(argvals) == 2:
            return self._matmul(argvals[0], argvals[1], node)
        if tail == "matmul" and len(argvals) == 2:
            return self._matmul(argvals[0], argvals[1], node)
        if tail == "broadcast_to" and len(node.args) == 2:
            return Value(shape=self._shape_literal(node.args[1]),
                         dtype=first.dtype)
        if tail == "allclose" or tail == "array_equal":
            return Value(shape=(), dtype="b")
        if tail == "expand_dims" and len(node.args) == 2:
            axis = self._const_int(node.args[1])
            return self._insert_axis(first, axis)
        if tail == "squeeze":
            return _UNKNOWN_VALUE
        return _UNKNOWN_VALUE

    def _eval_svd(self, node: ast.Call, first: Value) -> Value:
        full = True
        for kw in node.keywords:
            if kw.arg == "full_matrices" and isinstance(kw.value, ast.Constant):
                full = bool(kw.value.value)
        if first.shape is not None and len(first.shape) == 2:
            m, n = first.shape
            r: DimT = Var("rank")
            if full:
                shapes = [(m, m), (r,), (n, n)]
            else:
                shapes = [(m, r), (r,), (r, n)]
            return Value(elements=tuple(
                Value(shape=tuple(s), dtype=first.dtype) for s in shapes))
        return Value(elements=(_UNKNOWN_VALUE,) * 3)

    def _eval_concat(self, node: ast.Call, name: str) -> Value:
        """concatenate/stack/concat: unify non-axis dims of literal lists."""
        if not node.args:
            return _UNKNOWN_VALUE
        seq = node.args[0]
        axis = 0
        if len(node.args) > 1:
            axis_val = self._const_int(node.args[1])
            axis = axis_val if axis_val is not None else None
        for kw in node.keywords:
            if kw.arg == "axis":
                axis = self._const_int(kw.value)
        if not isinstance(seq, (ast.List, ast.Tuple)):
            self._eval(seq)
            return _UNKNOWN_VALUE
        parts = [self._eval(e) for e in seq.elts]
        if name in ("vstack", "hstack"):
            return _UNKNOWN_VALUE
        known = [p.shape for p in parts if p.shape is not None]
        if axis is None or len(known) != len(parts) or not known:
            return _UNKNOWN_VALUE
        ndim = len(known[0])
        if any(len(s) != ndim for s in known):
            return _UNKNOWN_VALUE
        if name == "stack":
            if not (-ndim - 1 <= axis <= ndim):
                return _UNKNOWN_VALUE
            axis = axis % (ndim + 1)
            dims = list(known[0])
            for other in known[1:]:
                for i in range(ndim):
                    ok, dims[i] = _unify_exact(dims[i], other[i])
                    if not ok:
                        self._emit("RA501", node,
                                   f"stacked operands disagree: "
                                   f"{_render_shape(known[0])} vs "
                                   f"{_render_shape(other)}")
                        return _UNKNOWN_VALUE
            dims.insert(axis, len(parts))
            return Value(shape=tuple(dims))
        if not (-ndim <= axis < ndim):
            return _UNKNOWN_VALUE
        axis = axis % ndim
        dims = list(known[0])
        for other in known[1:]:
            for i in range(ndim):
                if i == axis:
                    continue
                ok, dims[i] = _unify_exact(dims[i], other[i])
                if not ok:
                    self._emit("RA501", node,
                               f"concatenated operands disagree on a "
                               f"non-axis dim: {_render_shape(known[0])} "
                               f"vs {_render_shape(other)} (axis={axis})")
                    return _UNKNOWN_VALUE
        dims[axis] = UNKNOWN  # sizes add along the axis
        dtype = parts[0].dtype
        for p in parts[1:]:
            dtype = _promote_dtype(dtype, p.dtype)
        return Value(shape=tuple(dims), dtype=dtype)

    # -- methods --------------------------------------------------------- #

    def _eval_method(self, node: ast.Call, method: str, recv: Value,
                     argvals: List[Value],
                     kwvals: Dict[str, Value]) -> Value:
        if method in _ELEMENTWISE_METHODS:
            return recv
        if method == "astype":
            return Value(shape=recv.shape,
                         dtype=self._dtype_token(node.args[0])
                         if node.args else None)
        if method in _REDUCE_METHODS:
            reduced = self._reduce(recv, node)
            if method in ("argmax", "argmin"):
                return Value(shape=reduced.shape, dtype="i")
            if method in ("all", "any"):
                return Value(shape=reduced.shape, dtype="b")
            return reduced
        if method == "item":
            return Value(shape=())
        if method == "reshape":
            args = node.args
            if len(args) == 1 and isinstance(args[0], ast.Tuple):
                args = list(args[0].elts)
            dims: List[DimT] = []
            for arg in args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
                    dims.append(UNKNOWN if arg.value == -1 else arg.value)
                elif isinstance(arg, (ast.Name, ast.Attribute, ast.Subscript,
                                      ast.UnaryOp)):
                    dims.append(UNKNOWN)
                else:
                    return _UNKNOWN_VALUE
            return Value(shape=tuple(dims), dtype=recv.dtype)
        if method == "transpose":
            if recv.shape is None:
                return recv
            if not node.args:
                return Value(shape=tuple(reversed(recv.shape)),
                             dtype=recv.dtype)
            axes = [self._const_int(a) for a in node.args]
            if len(axes) == 1 and isinstance(node.args[0], ast.Tuple):
                axes = [self._const_int(a) for a in node.args[0].elts]
            if None in axes or sorted(a % len(recv.shape) for a in axes) \
                    != list(range(len(recv.shape))):
                return Value(dtype=recv.dtype)
            return Value(shape=tuple(recv.shape[a % len(recv.shape)]
                                     for a in axes), dtype=recv.dtype)
        if method == "swapaxes" and len(node.args) == 2 \
                and recv.shape is not None:
            i, j = (self._const_int(a) for a in node.args)
            if i is None or j is None:
                return Value(dtype=recv.dtype)
            dims = list(recv.shape)
            ndim = len(dims)
            if not (-ndim <= i < ndim and -ndim <= j < ndim):
                return Value(dtype=recv.dtype)
            dims[i % ndim], dims[j % ndim] = dims[j % ndim], dims[i % ndim]
            return Value(shape=tuple(dims), dtype=recv.dtype)
        if method == "squeeze" and recv.shape is not None and node.args:
            axis = self._const_int(node.args[0])
            if axis is not None and -len(recv.shape) <= axis < len(recv.shape):
                dims = list(recv.shape)
                dims.pop(axis % len(dims))
                return Value(shape=tuple(dims), dtype=recv.dtype)
            return Value(dtype=recv.dtype)
        if method == "expand_dims" and node.args:
            return self._insert_axis(recv, self._const_int(node.args[0]))
        return _UNKNOWN_VALUE

    def _insert_axis(self, value: Value, axis: Optional[int]) -> Value:
        if value.shape is None or axis is None:
            return Value(dtype=value.dtype)
        ndim = len(value.shape)
        if not (-ndim - 1 <= axis <= ndim):
            return Value(dtype=value.dtype)
        dims = list(value.shape)
        dims.insert(axis % (ndim + 1), 1)
        return Value(shape=tuple(dims), dtype=value.dtype)

    def _reduce(self, value: Value, node: ast.Call) -> Value:
        """Shape of a sum/mean/max/... call given axis=/keepdims= consts."""
        axis_node: Optional[ast.expr] = None
        keepdims = False
        keepdims_known = True
        # axis may be the first positional arg (after the array for np.sum)
        positional = list(node.args)
        if positional and isinstance(node.func, ast.Attribute) \
                and dotted_name(node.func) is not None \
                and dotted_name(node.func).split(".", 1)[0] in ("np", "numpy"):
            positional = positional[1:]  # np.sum(x, axis)
        if positional:
            axis_node = positional[0]
        for kw in node.keywords:
            if kw.arg == "axis":
                axis_node = kw.value
            elif kw.arg == "keepdims":
                if isinstance(kw.value, ast.Constant):
                    keepdims = bool(kw.value.value)
                else:
                    keepdims_known = False
        if not keepdims_known or value.shape is None:
            return Value(dtype=value.dtype)
        if axis_node is None or (isinstance(axis_node, ast.Constant)
                                 and axis_node.value is None):
            if keepdims:
                return Value(shape=(1,) * len(value.shape),
                             dtype=value.dtype)
            return Value(shape=(), dtype=value.dtype)
        axes: List[int] = []
        candidates = (axis_node.elts if isinstance(axis_node, ast.Tuple)
                      else [axis_node])
        for cand in candidates:
            axis = self._const_int(cand)
            if axis is None:
                return Value(dtype=value.dtype)
            axes.append(axis)
        ndim = len(value.shape)
        norm = set()
        for axis in axes:
            if not (-ndim <= axis < ndim):
                return Value(dtype=value.dtype)
            norm.add(axis % ndim)
        dims: List[DimT] = []
        for i, dim in enumerate(value.shape):
            if i in norm:
                if keepdims:
                    dims.append(1)
            else:
                dims.append(dim)
        return Value(shape=tuple(dims), dtype=value.dtype)

    @staticmethod
    def _const_int(node: ast.expr) -> Optional[int]:
        if isinstance(node, ast.Constant) and isinstance(node.value, int) \
                and not isinstance(node.value, bool):
            return node.value
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub) \
                and isinstance(node.operand, ast.Constant) \
                and isinstance(node.operand.value, int):
            return -node.operand.value
        return None

    _DTYPE_NAMES = {
        "float32": "f32", "float64": "f64", "float": "f64",
        "single": "f32", "double": "f64",
        "int32": "i32", "int64": "i64", "int": "i64",
        "bool": "b", "bool_": "b",
    }

    def _dtype_token(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return self._DTYPE_NAMES.get(node.value)
        if isinstance(node, ast.Attribute):
            return self._DTYPE_NAMES.get(node.attr)
        if isinstance(node, ast.Name):
            return self._DTYPE_NAMES.get(node.id)
        return None

    def _dtype_from_kw(self, node: ast.Call) -> Optional[str]:
        for kw in node.keywords:
            if kw.arg == "dtype":
                return self._dtype_token(kw.value)
        return None

    def _shape_literal(self, node: ast.expr) -> ShapeT:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return (node.value,)
        if isinstance(node, (ast.Tuple, ast.List)):
            dims: List[DimT] = []
            for elt in node.elts:
                value = self._const_int(elt)
                if value is not None:
                    dims.append(value)
                elif isinstance(elt, (ast.Name, ast.Attribute, ast.Subscript,
                                      ast.Call)):
                    dims.append(UNKNOWN)
                else:
                    return None
            return tuple(dims)
        if isinstance(node, (ast.Name, ast.Attribute)):
            return None  # a variable shape tuple: rank unknown
        return None


# --------------------------------------------------------------------- #
# module-level driver + rules
# --------------------------------------------------------------------- #


def shape_findings(ctx: ModuleContext) -> List[Tuple[str, ast.AST, str]]:
    """All RA5xx findings for one module (rule id, node, message)."""
    decorated = decorated_functions(ctx)
    if not decorated:
        return []
    sink: List[Tuple[str, ast.AST, str]] = []
    for entry in decorated:
        if entry.spec_error is not None:
            sink.append(("RA502", entry.decorator,
                         f"invalid @shape_contract spec on "
                         f"'{entry.node.name}': {entry.spec_error}"))
        elif entry.arity_error is not None:
            sink.append(("RA502", entry.decorator,
                         f"@shape_contract on '{entry.node.name}': "
                         f"{entry.arity_error}"))
    table = _local_contract_table(decorated)
    for entry in decorated:
        if entry.spec_error is not None or entry.arity_error is not None:
            continue
        checker = _FunctionShapeChecker(ctx, entry, table, sink)
        checker.run()
    return sink


class _ShapeRule(Rule):
    """Shared machinery: run the propagator, keep this rule's findings."""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for rule_id, node, message in shape_findings(ctx):
            if rule_id == self.id:
                yield self.finding(ctx, node, message)


@register
class ShapeContradiction(_ShapeRule):
    """RA501: symbolic shape contradiction inside a decorated function."""

    id = "RA501"
    name = "shape-contradiction"
    severity = SEVERITY_ERROR
    summary = ("symbolic shape contradiction (matmul/broadcast/return) "
               "inside a @shape_contract function")


@register
class InvalidContractSpec(_ShapeRule):
    """RA502: the @shape_contract spec itself is broken."""

    id = "RA502"
    name = "invalid-contract-spec"
    severity = SEVERITY_ERROR
    summary = ("unparseable @shape_contract spec string or arity mismatch "
               "with the function signature")


@register
class ContractCallMismatch(_ShapeRule):
    """RA503: a call to a contracted function contradicts its contract."""

    id = "RA503"
    name = "contract-call-mismatch"
    severity = SEVERITY_ERROR
    summary = ("argument shapes at a call site contradict the callee's "
               "@shape_contract (or a registered external contract)")


@register
class ContractDtypeMismatch(_ShapeRule):
    """RA504: inferred dtype class conflicts with a declared one."""

    id = "RA504"
    name = "contract-dtype-mismatch"
    severity = SEVERITY_WARNING
    summary = ("inferred dtype class (e.g. an f32 downcast) contradicts "
               "the contract's declared dtype")
