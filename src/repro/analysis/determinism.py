"""RA7xx: determinism rules — ordering hazards in reductions and discovery.

The repo's reproducibility story (bit-identical crash/resume, per-user vs
micro-batched gradient identity, trace fingerprints) assumes every
numeric reduction happens in a fixed order and every discovery pass
(checkpoint/journal scans) sees files in a fixed order.  Three classes
of code break that silently:

* **RA701** — accumulating numbers while iterating a ``set``: iteration
  order depends on ``PYTHONHASHSEED`` for str/tuple elements, so two
  runs of the same program can reduce in different orders (and float
  addition does not commute bitwise);
* **RA702** — consuming ``os.listdir`` / ``glob`` / ``Path.iterdir``
  results without ``sorted(...)``: listing order is
  filesystem-dependent, so resume/journal discovery can pick different
  files on different machines;
* **RA703** — ``time``/``id()``/wall-clock values inside functions that
  compute fingerprints, digests, or cache keys: the output then differs
  run to run even for identical inputs.

Order-insensitive consumers (``sorted``, ``set``, ``len``, ``any``,
``all``, ``max``, ``min``) exempt a listing; everything else needs the
explicit sort.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional

from .core import SEVERITY_ERROR, Finding, ModuleContext, Rule, register
from .rules import dotted_name, functions, terminal_name

_ORDER_INSENSITIVE = frozenset({
    "sorted", "set", "frozenset", "len", "any", "all", "max", "min",
})
_LISTING_CALLS = ("os.listdir", "glob.glob", "glob.iglob", "os.scandir")
_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})
_FP_NAME_RE = re.compile(
    r"fingerprint|cache_key|digest|checksum|stable_hash", re.IGNORECASE)
_IMPURE_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "os.urandom",
    "uuid.uuid1", "uuid.uuid4",
})
_IMPURE_METHODS = frozenset({"now", "utcnow", "today"})


def _is_set_expr(node: ast.AST, set_names: Dict[str, bool]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = terminal_name(node.func)
        if name in ("set", "frozenset") and not isinstance(
                node.func, ast.Attribute):
            return True
    if isinstance(node, ast.Name):
        return set_names.get(node.id, False)
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        # set algebra: s1 | s2, s1 & s2, s1 - s2
        return (_is_set_expr(node.left, set_names)
                or _is_set_expr(node.right, set_names))
    return False


def _set_assignments(fn: ast.AST) -> Dict[str, bool]:
    """Local names ever assigned a set-valued expression (may-semantics)."""
    names: Dict[str, bool] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and \
                        _is_set_expr(node.value, names):
                    names[target.id] = True
    return names


@register
class SetIterationAccumulation(Rule):
    """RA701: numeric accumulation over unordered set iteration."""

    id = "RA701"
    name = "set-iteration-accumulation"
    severity = SEVERITY_ERROR
    summary = ("accumulating while iterating a set: iteration order is "
               "hash-seed dependent, so float reductions lose bitwise "
               "determinism; iterate sorted(...) instead")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for fn in functions(ctx.tree):
            set_names = _set_assignments(fn)
            for node in ast.walk(fn):
                if not isinstance(node, ast.For):
                    continue
                if not _is_set_expr(node.iter, set_names):
                    continue
                accumulates = any(
                    isinstance(inner, ast.AugAssign)
                    for stmt in node.body for inner in ast.walk(stmt))
                if accumulates:
                    yield self.finding(
                        ctx, node,
                        "loop accumulates over a set whose iteration order "
                        "is not deterministic across processes; iterate "
                        "sorted(...) so the reduction order is fixed")


@register
class UnsortedDirectoryListing(Rule):
    """RA702: directory listing consumed without sorted(...)."""

    id = "RA702"
    name = "unsorted-directory-listing"
    severity = SEVERITY_ERROR
    summary = ("os.listdir/glob/Path.iterdir order is filesystem-dependent; "
               "wrap the listing in sorted(...) before consuming it")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            is_listing = (name in _LISTING_CALLS
                          or (isinstance(node.func, ast.Attribute)
                              and node.func.attr in _LISTING_METHODS))
            if not is_listing:
                continue
            exempt = any(
                isinstance(anc, ast.Call)
                and terminal_name(anc.func) in _ORDER_INSENSITIVE
                for anc in ctx.ancestors(node))
            if exempt:
                continue
            yield self.finding(
                ctx, node,
                "directory listing order depends on the filesystem; wrap in "
                "sorted(...) (or consume it order-insensitively) so "
                "discovery is deterministic")


@register
class ImpureFingerprint(Rule):
    """RA703: wall-clock / id() values flowing into fingerprint paths."""

    id = "RA703"
    name = "impure-fingerprint"
    severity = SEVERITY_ERROR
    summary = ("time/id()/urandom inside a fingerprint/digest/cache-key "
               "function makes the result differ run to run for identical "
               "inputs")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for fn in functions(ctx.tree):
            if not _FP_NAME_RE.search(fn.name):
                continue
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                impure = (
                    name in _IMPURE_CALLS
                    or (isinstance(node.func, ast.Attribute)
                        and node.func.attr in _IMPURE_METHODS)
                    or (isinstance(node.func, ast.Name)
                        and node.func.id == "id"))
                if impure:
                    label = name or terminal_name(node.func)
                    yield self.finding(
                        ctx, node,
                        f"'{label}()' in a fingerprinted path: the value "
                        f"changes run to run, so the fingerprint is not a "
                        f"function of its inputs; derive it from content "
                        f"only")
