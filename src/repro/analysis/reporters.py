"""Text and JSON renderings of an :class:`~repro.analysis.engine.AnalysisReport`.

The text form is the human / CI-log view; the JSON form feeds tooling
(``benchmarks/summarize.py`` ingests its ``summary`` block as a tracked
quality metric).
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict

from .core import SEVERITY_ERROR, SEVERITY_WARNING
from .engine import AnalysisReport


def _counts(report: AnalysisReport) -> Dict[str, int]:
    severities = Counter(f.severity for f in report.findings)
    return {
        "findings": len(report.findings),
        "errors": severities.get(SEVERITY_ERROR, 0) + len(report.parse_errors),
        "warnings": severities.get(SEVERITY_WARNING, 0),
        "baselined": len(report.baselined),
        "noqa_suppressed": len(report.noqa_suppressed),
        "parse_errors": len(report.parse_errors),
        "stale_baseline": len(report.stale_baseline),
        "files_scanned": report.files_scanned,
    }


def render_text(report: AnalysisReport) -> str:
    lines = []
    for f in report.parse_errors + report.findings:
        lines.append(f.format())
    counts = _counts(report)
    if report.stale_baseline:
        lines.append("stale baseline entries (finding no longer present — "
                     "remove them):")
        for entry in report.stale_baseline:
            lines.append(f"  {entry.fingerprint}  {entry.rule}  {entry.path}")
    if counts["findings"] or counts["parse_errors"]:
        by_rule = Counter(f.rule for f in report.findings)
        fired = ", ".join(f"{rid}×{n}" for rid, n in sorted(by_rule.items()))
        lines.append(
            f"{counts['findings']} finding(s) "
            f"({counts['errors']} error(s), {counts['warnings']} warning(s)) "
            f"across {counts['files_scanned']} file(s)"
            + (f" [{fired}]" if fired else ""))
    else:
        suffix = []
        if counts["baselined"]:
            suffix.append(f"{counts['baselined']} baselined")
        if counts["noqa_suppressed"]:
            suffix.append(f"{counts['noqa_suppressed']} noqa-suppressed")
        detail = f" ({', '.join(suffix)})" if suffix else ""
        lines.append(f"clean: 0 findings across {counts['files_scanned']} "
                     f"file(s){detail}")
    return "\n".join(lines)


def _gha_escape(text: str) -> str:
    """Escape a workflow-command message per the Actions toolkit rules."""
    return (text.replace("%", "%25")
                .replace("\r", "%0D")
                .replace("\n", "%0A"))


def render_github(report: AnalysisReport) -> str:
    """GitHub Actions ``::error``/``::warning`` workflow commands.

    One annotation per finding (and per parse error), so findings show
    inline on the PR diff; the final line is the human text summary for
    the raw job log.
    """
    lines = []
    for f in report.parse_errors + report.findings:
        level = "error" if f.severity == SEVERITY_ERROR else "warning"
        lines.append(
            f"::{level} file={f.path},line={f.line},col={f.col + 1},"
            f"title={f.rule}::{_gha_escape(f.message)}")
    lines.append(render_text(report))
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    by_rule = Counter(f.rule for f in report.findings)
    payload = {
        "version": 1,
        "tool": "repro.analysis",
        "summary": {**_counts(report), "by_rule": dict(sorted(by_rule.items()))},
        "rules_run": report.rules_run,
        "findings": [f.as_dict() for f in report.findings],
        "parse_errors": [f.as_dict() for f in report.parse_errors],
        "baselined": [f.as_dict() for f in report.baselined],
        "stale_baseline": [e.as_dict() for e in report.stale_baseline],
        "exit_code": report.exit_code,
    }
    return json.dumps(payload, indent=2)
