"""Text, JSON, GitHub-annotation, and SARIF renderings of an
:class:`~repro.analysis.engine.AnalysisReport`.

The text form is the human / CI-log view; the JSON form feeds tooling
(``benchmarks/summarize.py`` ingests its ``summary`` block as a tracked
quality metric); the SARIF form is what CI uploads to code scanning so
findings annotate PRs.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict

from .core import PARSE_ERROR_RULE, RULE_REGISTRY, SEVERITY_ERROR, SEVERITY_WARNING
from .engine import AnalysisReport


def _counts(report: AnalysisReport) -> Dict[str, int]:
    severities = Counter(f.severity for f in report.findings)
    return {
        "findings": len(report.findings),
        "errors": severities.get(SEVERITY_ERROR, 0) + len(report.parse_errors),
        "warnings": severities.get(SEVERITY_WARNING, 0),
        "baselined": len(report.baselined),
        "noqa_suppressed": len(report.noqa_suppressed),
        "parse_errors": len(report.parse_errors),
        "stale_baseline": len(report.stale_baseline),
        "files_scanned": report.files_scanned,
    }


def render_text(report: AnalysisReport) -> str:
    lines = []
    for f in report.parse_errors + report.findings:
        lines.append(f.format())
    counts = _counts(report)
    if report.stale_baseline:
        lines.append("stale baseline entries (finding no longer present — "
                     "remove them):")
        for entry in report.stale_baseline:
            lines.append(f"  {entry.fingerprint}  {entry.rule}  {entry.path}")
    if counts["findings"] or counts["parse_errors"]:
        by_rule = Counter(f.rule for f in report.findings)
        fired = ", ".join(f"{rid}×{n}" for rid, n in sorted(by_rule.items()))
        lines.append(
            f"{counts['findings']} finding(s) "
            f"({counts['errors']} error(s), {counts['warnings']} warning(s)) "
            f"across {counts['files_scanned']} file(s)"
            + (f" [{fired}]" if fired else ""))
    else:
        suffix = []
        if counts["baselined"]:
            suffix.append(f"{counts['baselined']} baselined")
        if counts["noqa_suppressed"]:
            suffix.append(f"{counts['noqa_suppressed']} noqa-suppressed")
        detail = f" ({', '.join(suffix)})" if suffix else ""
        lines.append(f"clean: 0 findings across {counts['files_scanned']} "
                     f"file(s){detail}")
    return "\n".join(lines)


def _gha_escape(text: str) -> str:
    """Escape a workflow-command message per the Actions toolkit rules."""
    return (text.replace("%", "%25")
                .replace("\r", "%0D")
                .replace("\n", "%0A"))


def render_github(report: AnalysisReport) -> str:
    """GitHub Actions ``::error``/``::warning`` workflow commands.

    One annotation per finding (and per parse error), so findings show
    inline on the PR diff; the final line is the human text summary for
    the raw job log.
    """
    lines = []
    for f in report.parse_errors + report.findings:
        level = "error" if f.severity == SEVERITY_ERROR else "warning"
        lines.append(
            f"::{level} file={f.path},line={f.line},col={f.col + 1},"
            f"title={f.rule}::{_gha_escape(f.message)}")
    lines.append(render_text(report))
    return "\n".join(lines)


def render_sarif(report: AnalysisReport) -> str:
    """SARIF 2.1.0, the schema GitHub code scanning ingests.

    One ``result`` per actionable finding and per parse error (baselined
    and noqa-suppressed findings are deliberately omitted — they are not
    actionable and would re-annotate every PR).  ``partialFingerprints``
    carries the engine's baseline fingerprint so code scanning tracks a
    finding across unrelated line shifts exactly like the baseline does.
    """
    rules_meta = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary or rule.name},
            "defaultConfiguration": {
                "level": "error" if rule.severity == SEVERITY_ERROR
                else "warning"},
        }
        for rule in sorted(RULE_REGISTRY.values(), key=lambda r: r.id)
    ]
    rules_meta.append({
        "id": PARSE_ERROR_RULE,
        "name": "parse-error",
        "shortDescription": {"text": "file could not be parsed"},
        "defaultConfiguration": {"level": "error"},
    })
    rules_meta.sort(key=lambda meta: meta["id"])
    rule_index = {meta["id"]: i for i, meta in enumerate(rules_meta)}

    results = []
    for f in report.parse_errors + report.findings:
        result = {
            "ruleId": f.rule,
            "ruleIndex": rule_index.get(f.rule, -1),
            "level": "error" if f.severity == SEVERITY_ERROR else "warning",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path,
                                         "uriBaseId": "SRCROOT"},
                    "region": {"startLine": f.line,
                               "startColumn": f.col + 1},
                },
            }],
            "partialFingerprints": {"reproFingerprint/v1": f.fingerprint()},
        }
        results.append(result)

    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "rules": rules_meta,
            }},
            "columnKind": "utf16CodeUnits",
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_json(report: AnalysisReport) -> str:
    by_rule = Counter(f.rule for f in report.findings)
    payload = {
        "version": 1,
        "tool": "repro.analysis",
        "summary": {**_counts(report), "by_rule": dict(sorted(by_rule.items()))},
        "rules_run": report.rules_run,
        "findings": [f.as_dict() for f in report.findings],
        "parse_errors": [f.as_dict() for f in report.parse_errors],
        "baselined": [f.as_dict() for f in report.baselined],
        "stale_baseline": [e.as_dict() for e in report.stale_baseline],
        "exit_code": report.exit_code,
    }
    return json.dumps(payload, indent=2)
