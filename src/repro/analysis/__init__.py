"""Static analysis for the autograd-based training stack.

A from-scratch numpy autograd engine has no runtime guardrails: code
that mutates ``Tensor.data`` in place, does math outside the tape, or
draws from the global ``np.random`` state corrupts every IMSR result
*silently*.  This package enforces those contracts mechanically — an
AST rule engine with per-rule ids/severities, ``# repro: noqa[RULE]``
inline suppression, a committed baseline for grandfathered findings,
text/JSON reporters, and deterministic exit codes.

Run it as ``python -m repro.analysis src``, ``repro lint``, or the
``repro-lint`` console script; the rule catalogue lives in
``docs/ANALYSIS.md``.
"""

from .baseline import Baseline, BaselineEntry, discover_baseline
from .core import (
    Finding,
    ModuleContext,
    Rule,
    RULE_REGISTRY,
    all_rules,
    register,
)
from .engine import AnalysisReport, analyze_paths, analyze_source, iter_python_files
from .reporters import render_github, render_json, render_text
from . import rules  # registers the rule set on import
from . import shapes  # registers the RA5xx shape-contract family
from . import aliasing  # registers the RA6xx aliasing family
from . import determinism  # registers the RA7xx determinism family

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ModuleContext",
    "Rule",
    "RULE_REGISTRY",
    "aliasing",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "determinism",
    "discover_baseline",
    "iter_python_files",
    "register",
    "render_github",
    "render_json",
    "render_text",
    "rules",
    "shapes",
]
