"""Static analysis for the autograd-based training stack.

A from-scratch numpy autograd engine has no runtime guardrails: code
that mutates ``Tensor.data`` in place, does math outside the tape, or
draws from the global ``np.random`` state corrupts every IMSR result
*silently*.  This package enforces those contracts mechanically — an
AST rule engine with per-rule ids/severities, ``# repro: noqa[RULE]``
inline suppression, a committed baseline for grandfathered findings,
text/JSON/GitHub/SARIF reporters, and deterministic exit codes.

Intra-procedural families (RA1xx–RA7xx) run per module; the
interprocedural family (RA80x) runs over a whole-project call graph
with fixed-point function summaries (:mod:`repro.analysis.callgraph`,
:mod:`repro.analysis.summaries`), cached to a deterministic sidecar so
warm re-lints skip parsing entirely.

Run it as ``python -m repro.analysis src``, ``repro lint``, or the
``repro-lint`` console script; the rule catalogue lives in
``docs/ANALYSIS.md``.
"""

from .baseline import Baseline, BaselineEntry, discover_baseline
from .callgraph import ModuleFacts, ProjectIndex, extract_module_facts
from .core import (
    Finding,
    ModuleContext,
    ProjectRule,
    Rule,
    RULE_REGISTRY,
    all_rules,
    register,
)
from .engine import AnalysisReport, analyze_paths, analyze_source, iter_python_files
from .reporters import render_github, render_json, render_sarif, render_text
from .summaries import (
    FunctionSummary,
    ProjectAnalysis,
    SummaryCache,
    analyze_project,
)
from . import rules  # registers the rule set on import
from . import shapes  # registers the RA5xx shape-contract family
from . import aliasing  # registers the RA6xx aliasing family
from . import determinism  # registers the RA7xx determinism family
from . import interprocedural  # registers the RA80x interprocedural family

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "FunctionSummary",
    "ModuleContext",
    "ModuleFacts",
    "ProjectAnalysis",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "RULE_REGISTRY",
    "SummaryCache",
    "aliasing",
    "all_rules",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
    "determinism",
    "discover_baseline",
    "extract_module_facts",
    "interprocedural",
    "iter_python_files",
    "register",
    "render_github",
    "render_json",
    "render_sarif",
    "render_text",
    "rules",
    "shapes",
]
