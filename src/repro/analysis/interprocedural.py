"""RA801–RA805: the interprocedural rule family.

These rules are thin adapters: all the work happens in
:mod:`repro.analysis.callgraph` (fact extraction, name resolution) and
:mod:`repro.analysis.summaries` (fixed-point summaries + raw findings).
Each rule materializes its raw findings as :class:`Finding` objects so
they flow through the same noqa/baseline/reporting machinery as every
intra-procedural family.

=====  ==============================================================
id     fires when
=====  ==============================================================
RA801  a live Tensor-buffer alias or frozen snapshot (``capture()``
       result, snapshot-named value) is passed to a function whose
       summary says it mutates that parameter
RA802  a caller writes in place through a view of non-local storage
       that a callee returned (``returns-view-of-parameter``
       composed across the call)
RA803  a seeded entrypoint (takes ``seed``/``rng``/... or constructs
       a ``Generator``) calls into a chain that draws from the
       process-global RNG
RA804  a ``@shape_contract``-decorated function forwards a
       contract-checked argument to a param-mutating callee
RA805  a call cycle forwards parameters through a dynamic call, so
       the summary fixed point is unsound there — reported once per
       cycle instead of silently skipped
=====  ==============================================================
"""

from __future__ import annotations

from typing import Iterator

from .core import SEVERITY_ERROR, SEVERITY_WARNING, Finding, ProjectRule, register
from .summaries import ProjectAnalysis


class _SummaryBackedRule(ProjectRule):
    """Materializes the raw findings computed for this rule's id."""

    def check_project(self, project: ProjectAnalysis) -> Iterator[Finding]:
        for raw in project.findings_for(self.id):
            yield Finding(
                rule=self.id,
                severity=self.severity,
                path=raw.path,
                line=raw.line,
                col=raw.col,
                message=raw.message,
                source=raw.source,
            )


@register
class SnapshotPassedToMutator(_SummaryBackedRule):
    id = "RA801"
    name = "snapshot-passed-to-mutator"
    severity = SEVERITY_ERROR
    summary = ("live buffer alias or frozen snapshot passed to a function "
               "summarized as mutating that parameter")


@register
class WriteThroughReturnedView(_SummaryBackedRule):
    id = "RA802"
    name = "write-through-returned-view"
    severity = SEVERITY_ERROR
    summary = ("in-place write through a parameter view returned by a "
               "callee — the write escapes the writing function")


@register
class GlobalRngReachableFromSeeded(_SummaryBackedRule):
    id = "RA803"
    name = "global-rng-reachable-from-seeded"
    severity = SEVERITY_ERROR
    summary = ("seeded entrypoint transitively draws from the process-"
               "global RNG instead of the threaded Generator")


@register
class ContractArgumentMutated(_SummaryBackedRule):
    id = "RA804"
    name = "contract-argument-mutated"
    severity = SEVERITY_ERROR
    summary = ("shape-contract-decorated function forwards a contract-"
               "checked argument to a parameter-mutating callee")


@register
class UnsoundSummaryCycle(_SummaryBackedRule):
    id = "RA805"
    name = "unsound-summary-cycle"
    severity = SEVERITY_WARNING
    summary = ("call cycle forwards parameters through a dynamic call; "
               "the summary fixed point cannot cover it")
