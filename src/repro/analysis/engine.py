"""File discovery and rule execution.

:func:`analyze_paths` is the programmatic entry point: it walks the
given files/directories, parses every python module once, runs the
registered rules, applies ``# repro: noqa`` suppressions and the
baseline, and returns an :class:`AnalysisReport` with deterministic
ordering and exit semantics (0 = clean, 1 = actionable findings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from . import rules as _rules  # noqa: F401  (importing registers the rules)
from . import shapes as _shapes  # noqa: F401  (registers the RA5xx family)
from . import aliasing as _aliasing  # noqa: F401  (registers the RA6xx family)
from . import determinism as _determinism  # noqa: F401  (registers RA7xx)
from .baseline import Baseline, BaselineEntry
from .core import (
    PARSE_ERROR_RULE,
    RULE_REGISTRY,
    SEVERITY_ERROR,
    Finding,
    ModuleContext,
    Rule,
)

_SKIP_DIR_SUFFIXES = (".egg-info",)
_SKIP_DIR_NAMES = ("__pycache__", "build", "dist")


def iter_python_files(paths: Sequence[str],
                      exclude: Sequence[str] = ()) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated module list.

    ``exclude`` names path components to skip during directory expansion
    (e.g. ``analysis_fixtures`` — deliberately-violating test fixtures);
    explicitly listed files are never excluded.
    """
    seen = set()
    out: List[Path] = []
    excluded = set(exclude)

    def _add(path: Path) -> None:
        key = path.resolve()
        if key not in seen:
            seen.add(key)
            out.append(path)

    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            _add(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = candidate.parts
                if any(part.startswith(".") or part in _SKIP_DIR_NAMES
                       or part in excluded
                       or part.endswith(_SKIP_DIR_SUFFIXES)
                       for part in parts):
                    continue
                _add(candidate)
    return out


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    noqa_suppressed: List[Finding] = field(default_factory=list)
    parse_errors: List[Finding] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: List[str] = field(default_factory=list)
    baseline_path: Optional[Path] = None

    @property
    def exit_code(self) -> int:
        """0 = clean (baselined/suppressed findings do not fail the run)."""
        return 1 if (self.findings or self.parse_errors) else 0

    @property
    def all_raw_findings(self) -> List[Finding]:
        return self.findings + self.baselined + self.noqa_suppressed


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def selected_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    if select is None:
        return list(RULE_REGISTRY.values())
    wanted = {s.strip().upper() for s in select if s.strip()}
    unknown = wanted - set(RULE_REGISTRY)
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                       f"known: {', '.join(RULE_REGISTRY)}")
    return [rule for rid, rule in RULE_REGISTRY.items() if rid in wanted]


def analyze_source(source: str, path: Path, select: Optional[Sequence[str]] = None,
                   display_path: Optional[str] = None) -> List[Finding]:
    """Run the (selected) rules over one in-memory module.

    noqa suppression is applied; the baseline is not.  Primarily for
    tests and tooling that synthesize snippets.
    """
    ctx = ModuleContext.from_source(source, path,
                                    display_path=display_path or str(path))
    findings: List[Finding] = []
    for rule in selected_rules(select):
        findings.extend(rule.check(ctx))
    kept = []
    for f in findings:
        directive = ctx.noqa_for_line(f.line)
        if directive is not None and (not directive or f.rule in directive):
            continue
        kept.append(f)
    return _sorted(kept)


def _sorted(findings: List[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def analyze_paths(paths: Sequence[str], select: Optional[Sequence[str]] = None,
                  baseline: Optional[Baseline] = None,
                  exclude: Sequence[str] = ()) -> AnalysisReport:
    """Analyze a tree; apply noqa directives and the baseline."""
    rules = selected_rules(select)
    report = AnalysisReport(rules_run=[r.id for r in rules])
    if baseline is not None:
        report.baseline_path = baseline.source

    matched_fingerprints: List[str] = []
    for path in iter_python_files(paths, exclude=exclude):
        report.files_scanned += 1
        display = _display_path(path)
        try:
            source = path.read_text(encoding="utf-8")
            ctx = ModuleContext.from_source(source, path, display_path=display)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            report.parse_errors.append(Finding(
                rule=PARSE_ERROR_RULE,
                severity=SEVERITY_ERROR,
                path=display,
                line=line,
                col=0,
                message=f"could not analyze file: {exc}",
            ))
            continue

        for rule in rules:
            for f in rule.check(ctx):
                directive = ctx.noqa_for_line(f.line)
                if directive is not None and (not directive
                                              or f.rule in directive):
                    report.noqa_suppressed.append(f)
                    continue
                fingerprint = f.fingerprint()
                if baseline is not None and fingerprint in baseline:
                    matched_fingerprints.append(fingerprint)
                    report.baselined.append(f)
                    continue
                report.findings.append(f)

    report.findings = _sorted(report.findings)
    report.baselined = _sorted(report.baselined)
    report.noqa_suppressed = _sorted(report.noqa_suppressed)
    if baseline is not None:
        report.stale_baseline = baseline.stale_entries(matched_fingerprints)
    return report
