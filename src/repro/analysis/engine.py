"""File discovery and rule execution.

:func:`analyze_paths` is the programmatic entry point: it walks the
given files/directories, parses every python module once, runs the
registered module rules, extracts call-graph facts, runs the
interprocedural fixed point and project rules (RA80x), applies
``# repro: noqa`` suppressions and the baseline, and returns an
:class:`AnalysisReport` with deterministic ordering and exit semantics
(0 = clean, 1 = actionable findings).

With a :class:`~repro.analysis.summaries.SummaryCache` attached, both
the per-module raw findings and the extracted facts are keyed on the
file's SHA-256: a warm run re-parses nothing — suppression is a pure
text operation (:func:`repro.analysis.core.noqa_directive`) and only
the cheap summary fixed point re-runs.  The cache is bypassed whenever
``--select`` narrows the rule set, so cached entries always reflect
every registered module rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from . import rules as _rules  # noqa: F401  (importing registers the rules)
from . import shapes as _shapes  # noqa: F401  (registers the RA5xx family)
from . import aliasing as _aliasing  # noqa: F401  (registers the RA6xx family)
from . import determinism as _determinism  # noqa: F401  (registers RA7xx)
from . import interprocedural as _ipa  # noqa: F401  (registers RA80x)
from .baseline import Baseline, BaselineEntry
from .callgraph import ModuleFacts, extract_module_facts
from .core import (
    PARSE_ERROR_RULE,
    RULE_REGISTRY,
    SEVERITY_ERROR,
    Finding,
    ModuleContext,
    ProjectRule,
    Rule,
    noqa_directive,
)
from .summaries import ProjectAnalysis, SummaryCache, analyze_project, file_sha

_SKIP_DIR_SUFFIXES = (".egg-info",)
_SKIP_DIR_NAMES = ("__pycache__", "build", "dist")


def iter_python_files(paths: Sequence[str],
                      exclude: Sequence[str] = ()) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated module list.

    ``exclude`` names path components to skip during directory expansion
    (e.g. ``analysis_fixtures`` — deliberately-violating test fixtures);
    explicitly listed files are never excluded.
    """
    seen = set()
    out: List[Path] = []
    excluded = set(exclude)

    def _add(path: Path) -> None:
        key = path.resolve()
        if key not in seen:
            seen.add(key)
            out.append(path)

    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            _add(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = candidate.parts
                if any(part.startswith(".") or part in _SKIP_DIR_NAMES
                       or part in excluded
                       or part.endswith(_SKIP_DIR_SUFFIXES)
                       for part in parts):
                    continue
                _add(candidate)
    return out


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    noqa_suppressed: List[Finding] = field(default_factory=list)
    parse_errors: List[Finding] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: List[str] = field(default_factory=list)
    baseline_path: Optional[Path] = None
    project: Optional[ProjectAnalysis] = None
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def exit_code(self) -> int:
        """0 = clean (baselined/suppressed findings do not fail the run)."""
        return 1 if (self.findings or self.parse_errors) else 0

    @property
    def all_raw_findings(self) -> List[Finding]:
        return self.findings + self.baselined + self.noqa_suppressed


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def selected_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    if select is None:
        return list(RULE_REGISTRY.values())
    wanted = {s.strip().upper() for s in select if s.strip()}
    unknown = wanted - set(RULE_REGISTRY)
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                       f"known: {', '.join(RULE_REGISTRY)}")
    return [rule for rid, rule in RULE_REGISTRY.items() if rid in wanted]


def _split_rules(rules: Sequence[Rule]):
    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    return module_rules, project_rules


def _finding_to_cache(finding: Finding) -> Dict[str, object]:
    return {"rule": finding.rule, "severity": finding.severity,
            "path": finding.path, "line": finding.line, "col": finding.col,
            "message": finding.message, "source": finding.source}


def _finding_from_cache(raw: Dict[str, object]) -> Finding:
    return Finding(**raw)


def analyze_source(source: str, path: Path, select: Optional[Sequence[str]] = None,
                   display_path: Optional[str] = None) -> List[Finding]:
    """Run the (selected) rules over one in-memory module.

    Project rules see a single-module project, so RA80x fixtures and
    snippets behave exactly like a one-file tree.  noqa suppression is
    applied; the baseline is not.
    """
    ctx = ModuleContext.from_source(source, path,
                                    display_path=display_path or str(path))
    module_rules, project_rules = _split_rules(selected_rules(select))
    findings: List[Finding] = []
    for rule in module_rules:
        findings.extend(rule.check(ctx))
    if project_rules:
        project = analyze_project([extract_module_facts(ctx)])
        for rule in project_rules:
            findings.extend(rule.check_project(project))
    kept = []
    for f in findings:
        directive = ctx.noqa_for_line(f.line)
        if directive is not None and (not directive or f.rule in directive):
            continue
        kept.append(f)
    return _sorted(kept)


def _sorted(findings: List[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def analyze_paths(paths: Sequence[str], select: Optional[Sequence[str]] = None,
                  baseline: Optional[Baseline] = None,
                  exclude: Sequence[str] = (),
                  cache: Optional[SummaryCache] = None) -> AnalysisReport:
    """Analyze a tree; apply noqa directives and the baseline."""
    rules = selected_rules(select)
    module_rules, project_rules = _split_rules(rules)
    report = AnalysisReport(rules_run=[r.id for r in rules])
    if baseline is not None:
        report.baseline_path = baseline.source
    # cached entries cover the full module-rule set; a narrowed --select
    # run must not read or write them
    use_cache = cache is not None and select is None

    matched_fingerprints: List[str] = []
    lines_by_path: Dict[str, List[str]] = {}
    facts_list: List[ModuleFacts] = []

    def _admit(finding: Finding, source_lines: List[str]) -> None:
        lineno = finding.line
        text = source_lines[lineno - 1] if 1 <= lineno <= len(source_lines) \
            else ""
        directive = noqa_directive(text)
        if directive is not None and (not directive
                                      or finding.rule in directive):
            report.noqa_suppressed.append(finding)
            return
        fingerprint = finding.fingerprint()
        if baseline is not None and fingerprint in baseline:
            matched_fingerprints.append(fingerprint)
            report.baselined.append(finding)
            return
        report.findings.append(finding)

    for path in iter_python_files(paths, exclude=exclude):
        report.files_scanned += 1
        display = _display_path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (UnicodeDecodeError, OSError) as exc:
            report.parse_errors.append(Finding(
                rule=PARSE_ERROR_RULE, severity=SEVERITY_ERROR, path=display,
                line=1, col=0, message=f"could not analyze file: {exc}"))
            continue
        source_lines = source.splitlines()
        lines_by_path[display] = source_lines

        raw_findings: Optional[List[Finding]] = None
        facts: Optional[ModuleFacts] = None
        if use_cache:
            sha = file_sha(source)
            hit = cache.lookup(display, sha)
            if hit is not None:
                raw_findings = [_finding_from_cache(f) for f in hit[0]]
                facts = hit[1]

        if raw_findings is None:
            try:
                ctx = ModuleContext.from_source(source, path,
                                                display_path=display)
            except SyntaxError as exc:
                line = getattr(exc, "lineno", 1) or 1
                report.parse_errors.append(Finding(
                    rule=PARSE_ERROR_RULE, severity=SEVERITY_ERROR,
                    path=display, line=line, col=0,
                    message=f"could not analyze file: {exc}"))
                continue
            raw_findings = [f for rule in module_rules
                            for f in rule.check(ctx)]
            facts = extract_module_facts(ctx)
            if use_cache:
                cache.store(display, sha,
                            [_finding_to_cache(f) for f in raw_findings],
                            facts)

        for finding in raw_findings:
            _admit(finding, source_lines)
        facts_list.append(facts)

    if project_rules and facts_list:
        report.project = analyze_project(facts_list)
        for rule in project_rules:
            for finding in rule.check_project(report.project):
                _admit(finding, lines_by_path.get(finding.path, []))

    if use_cache:
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses
        cache.save()

    report.findings = _sorted(report.findings)
    report.baselined = _sorted(report.baselined)
    report.noqa_suppressed = _sorted(report.noqa_suppressed)
    if baseline is not None:
        report.stale_baseline = baseline.stale_entries(matched_fingerprints)
    return report
