"""RA6xx: aliasing rules — mutation through views of Tensor buffers.

The RA101 family flags in-place writes *directly* into ``<x>.data`` /
``<x>.grad``.  This pass extends the check through local dataflow, the
same way the RA5xx shape propagator extends contracts through function
bodies: it tracks which local names *may alias* a Tensor buffer —

* ``v = t.data`` and ``g = t.grad`` (the buffer itself),
* slicing/indexing (``t.data[rows]``, gather outputs — conservatively
  treated as aliases even where numpy fancy indexing copies),
* ``.T`` and the view-producing methods (``reshape``, ``ravel``,
  ``squeeze``, ``swapaxes``, ``transpose``, ``diagonal``),
* the np-level equivalents (``np.asarray``, ``np.ravel``, …),

— and flags three sinks: in-place mutation of an alias (RA601),
mutating library calls on an alias (RA602: ``.fill``/``.sort``/
``np.add(..., out=)``/``ufunc.at``/``np.copyto``), and storing an
uncopied alias into longer-lived state (RA603).  ``.copy()`` /
``np.array`` / ``.astype`` break the alias chain, so the idiomatic fix
clears the finding.

The walk is flow-sensitive within a function (straight-line; branch
bodies are threaded sequentially) and intentionally may-alias: mutating
something that *might* share memory with an autograd-tracked buffer or
a captured snapshot is the bug class, even when one branch allocated
fresh memory.  RA601/RA602 apply everywhere including the substrate —
the optimizer is allowed to step ``p.data`` in place (RA101 exempts
it), but mutating an unrecognized *view* is a bug there too.  RA603 is
skipped in the substrate, where ``persistence`` legitimately collects
raw buffer references for hashing.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from .core import SEVERITY_ERROR, Finding, ModuleContext, Rule, register
from .rules import dotted_name, is_buffer_access, terminal_name

#: ndarray methods that return a view of the receiver
_VIEW_METHODS = frozenset({
    "reshape", "ravel", "squeeze", "swapaxes", "transpose", "diagonal",
    "view",
})
#: np-level functions that may return a view of their first argument
_NP_VIEW_FUNCS = frozenset({
    "asarray", "ravel", "reshape", "transpose", "squeeze", "swapaxes",
    "atleast_1d", "atleast_2d", "atleast_3d", "broadcast_to",
})
#: ndarray methods that mutate the receiver in place
_MUTATING_METHODS = frozenset({"fill", "sort", "partition", "put", "itemset"})
_NP_MODULE_NAMES = ("np", "numpy")

Sink = Tuple[str, ast.AST, str]


def _buffer_origin(node: ast.AST) -> str:
    """A readable description of the buffer an expression reaches into."""
    name = dotted_name(node)
    return f"'{name}'" if name else "a Tensor buffer"


class _AliasTracker:
    """Flow-sensitive may-alias walk over one statement block."""

    def __init__(self, sink: List[Sink], substrate: bool):
        self.sink = sink
        self.substrate = substrate
        self.env: Dict[str, Optional[str]] = {}

    # ---------------------------------------------------------------- #
    # expression evaluation: origin string when the value may alias a
    # Tensor buffer, None otherwise
    # ---------------------------------------------------------------- #
    def alias_of(self, node: Optional[ast.AST]) -> Optional[str]:
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            if node.attr in ("data", "grad"):
                return _buffer_origin(node)
            if node.attr == "T":
                return self.alias_of(node.value)
            if is_buffer_access(node):
                return _buffer_origin(node)
            return None
        if isinstance(node, ast.Subscript):
            return self.alias_of(node.value)
        if isinstance(node, ast.IfExp):
            return self.alias_of(node.body) or self.alias_of(node.orelse)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if isinstance(func.value, ast.Name) and \
                        func.value.id in _NP_MODULE_NAMES:
                    if func.attr in _NP_VIEW_FUNCS and node.args:
                        return self.alias_of(node.args[0])
                    return None
                if func.attr in _VIEW_METHODS:
                    return self.alias_of(func.value)
            return None
        return None

    def _root_name(self, node: ast.AST) -> Optional[str]:
        """The base Name of a Subscript/Attribute chain, else None."""
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    # ---------------------------------------------------------------- #
    # statement walk
    # ---------------------------------------------------------------- #
    def run(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            self.env[stmt.name] = None  # bodies get their own pass
            return
        for expr in self._exprs(stmt):
            self._scan_calls(expr)
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign([stmt.target], stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self._mutation_target(stmt.target, augmented=True)
        elif isinstance(stmt, ast.For):
            self._bind(stmt.target, self.alias_of(stmt.iter))
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, None)
            self.run(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                if handler.name:
                    self.env[handler.name] = None
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)

    def _exprs(self, stmt: ast.stmt) -> Iterator[ast.AST]:
        """Top-level expressions of a statement (no nested statements)."""
        if isinstance(stmt, ast.Expr):
            yield stmt.value
        elif isinstance(stmt, ast.Assign):
            yield stmt.value
            yield from stmt.targets
        elif isinstance(stmt, ast.AugAssign):
            yield stmt.value
            yield stmt.target
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            yield stmt.value
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            yield stmt.value
        elif isinstance(stmt, (ast.If, ast.While)):
            yield stmt.test
        elif isinstance(stmt, ast.For):
            yield stmt.iter
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                yield item.context_expr
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                yield stmt.exc
        elif isinstance(stmt, ast.Assert):
            yield stmt.test
            if stmt.msg is not None:
                yield stmt.msg

    # ---------------------------------------------------------------- #
    # sinks
    # ---------------------------------------------------------------- #
    def _assign(self, targets: List[ast.AST], value: ast.AST) -> None:
        value_alias = self.alias_of(value)
        for target in targets:
            if isinstance(target, ast.Name):
                self.env[target.id] = value_alias
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    self._bind(elt, None)
            elif isinstance(target, ast.Subscript):
                self._mutation_target(target, augmented=False)
                if value_alias and not self.substrate:
                    self.sink.append(("RA603", target,
                                      self._store_message(value_alias)))
            elif isinstance(target, ast.Attribute):
                if value_alias and not self.substrate:
                    self.sink.append(("RA603", target,
                                      self._store_message(value_alias)))

    def _store_message(self, origin: str) -> str:
        return (f"stores a value that may alias {origin} into longer-lived "
                f"state; snapshot with an explicit .copy() so later buffer "
                f"updates cannot leak through the alias")

    def _mutation_target(self, target: ast.AST, augmented: bool) -> None:
        if is_buffer_access(target):
            return  # direct buffer mutation is RA101's finding
        if isinstance(target, ast.Name):
            origin = self.env.get(target.id)
            name = target.id
        else:
            name = self._root_name(target)
            origin = self.env.get(name) if name else None
        if origin:
            op = "augmented assignment to" if augmented else "slice-assign into"
            self.sink.append((
                "RA601", target,
                f"in-place {op} '{name}', which may alias {origin}; "
                f"take an explicit .copy() before mutating"))

    def _scan_calls(self, expr: ast.AST) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                receiver = func.value
                if func.attr in _MUTATING_METHODS:
                    origin = self.alias_of(receiver)
                    if origin:
                        self.sink.append((
                            "RA602", node,
                            f".{func.attr}() mutates its receiver, which may "
                            f"alias {origin}; operate on an explicit .copy()"))
                elif func.attr == "at":
                    # ufunc scatter: np.add.at(dst, idx, val)
                    if node.args and not is_buffer_access(node.args[0]):
                        origin = self.alias_of(node.args[0])
                        if origin:
                            self.sink.append((
                                "RA602", node,
                                f"ufunc .at() scatters into a value that may "
                                f"alias {origin}; scatter into an explicit "
                                f".copy()"))
                elif dotted_name(func) in ("np.copyto", "numpy.copyto"):
                    if node.args:
                        origin = self.alias_of(node.args[0])
                        if origin:
                            self.sink.append((
                                "RA602", node,
                                f"np.copyto() writes into a value that may "
                                f"alias {origin}; copy into fresh memory"))
            for kw in node.keywords:
                if kw.arg == "out" and not is_buffer_access(kw.value):
                    origin = self.alias_of(kw.value)
                    if origin:
                        self.sink.append((
                            "RA602", node,
                            f"out= writes into a value that may alias "
                            f"{origin}; write into an explicit .copy()"))

    def _bind(self, target: ast.AST, value: Optional[str]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, None)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, None)


def alias_findings(ctx: ModuleContext) -> List[Sink]:
    """All RA6xx findings for one module (rule id, node, message)."""
    sink: List[Sink] = []
    substrate = ctx.is_substrate
    # module top level (nested defs are walked separately below)
    _AliasTracker(sink, substrate).run(ctx.tree.body)
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _AliasTracker(sink, substrate).run(node.body)
    return sink


class _AliasRule(Rule):
    """Shared machinery: run the alias tracker, keep this rule's findings."""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for rule_id, node, message in alias_findings(ctx):
            if rule_id == self.id:
                yield self.finding(ctx, node, message)


@register
class AliasedBufferMutation(_AliasRule):
    """RA601: += / slice-assign through a local view of a Tensor buffer."""

    id = "RA601"
    name = "aliased-buffer-mutation"
    severity = SEVERITY_ERROR
    summary = ("in-place mutation (+=, [...] =) of a local value that may "
               "alias Tensor.data/.grad; take a .copy() before mutating")


@register
class MutatingCallOnAlias(_AliasRule):
    """RA602: .fill/.sort/out=/ufunc.at aimed at a Tensor-buffer alias."""

    id = "RA602"
    name = "mutating-call-on-buffer-alias"
    severity = SEVERITY_ERROR
    summary = ("mutating library call (.fill, .sort, np.add(..., out=), "
               "ufunc.at, np.copyto) on a value that may alias a Tensor "
               "buffer")


@register
class UncopiedBufferStore(_AliasRule):
    """RA603: storing an uncopied buffer view into longer-lived state."""

    id = "RA603"
    name = "uncopied-buffer-store"
    severity = SEVERITY_ERROR
    summary = ("storing a Tensor-buffer view into object/container state "
               "without .copy(); snapshots must own their memory")
