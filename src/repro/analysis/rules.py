"""The repository's rule set (RA1xx graph safety, RA2xx randomness,
RA3xx numerics, RA4xx general hygiene).

Every rule is documented with a bad/good pair in ``docs/ANALYSIS.md``;
each also has a firing and a non-firing fixture under
``tests/analysis_fixtures/``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

from .core import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    ModuleContext,
    Rule,
    register,
)

# --------------------------------------------------------------------- #
# shared helpers
# --------------------------------------------------------------------- #

#: functions treated as loss code for the numerics / detach rules
LOSS_NAME_RE = re.compile(
    r"(loss|distill|retention|penalt|regulari[sz]|entropy|divergence"
    r"|likelihood|nll|(^|_)kd\d)",
    re.IGNORECASE,
)

#: functions treated as inference/evaluation entry points
EVAL_NAME_RE = re.compile(r"(evaluate|predict|snapshot|refresh|infer)",
                          re.IGNORECASE)

#: calls that build autograd graph nodes when invoked on a model
GRAPH_BUILDING_CALLS = frozenset(
    {"compute_interests", "embed_items", "loss_single", "loss_targets",
     "forward"}
)

#: ``np.random.<name>`` calls that are allowed (Generator construction)
_NP_RANDOM_OK = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator",
     "PCG64", "Philox", "MT19937", "SFC64"}
)

_GUARD_CALLS_LOG = frozenset({"clip", "maximum", "minimum", "log1p", "where"})
_GUARD_CALLS_EXP = frozenset({"clip", "maximum", "minimum", "abs", "log1p",
                              "tanh", "sigmoid"})
_REDUCTION_NAMES = frozenset({"sum", "mean", "norm", "std", "var", "prod"})
_EPS_NAME_RE = re.compile(r"eps", re.IGNORECASE)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``np.random.rand`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(func: ast.AST) -> Optional[str]:
    """The called name regardless of receiver: ``m.forward`` -> ``forward``."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def is_buffer_access(node: ast.AST) -> bool:
    """True when the expression reaches into ``<x>.data`` / ``<x>.grad``
    through any chain of attribute/subscript accesses (no calls)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute) and node.attr in ("data", "grad"):
            return True
        node = node.value
    return False


def functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _is_small_const(node: ast.AST) -> bool:
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and 0 < abs(node.value) <= 0.1)


def _is_eps_name(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return bool(_EPS_NAME_RE.search(node.id))
    if isinstance(node, ast.Attribute):
        return bool(_EPS_NAME_RE.search(node.attr))
    return False


def _collect_assignments(fn: ast.FunctionDef) -> Dict[str, List[Tuple[int, ast.expr]]]:
    """name -> [(lineno, value expr)] for simple single-target assigns."""
    out: Dict[str, List[Tuple[int, ast.expr]]] = {}
    for node in ast.walk(fn):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            out.setdefault(node.targets[0].id, []).append((node.lineno, node.value))
    return out


class _GuardScan:
    """Guard detection with one function's local dataflow.

    Resolves plain names through the function's simple assignments (the
    latest one textually above the use site) so idioms like::

        pred = pred.clip(eps, 1 - eps)
        return -pred.log().mean()

    count as guarded.
    """

    def __init__(self, fn: ast.FunctionDef):
        self._assignments = _collect_assignments(fn)

    def _resolve(self, name: str, before_line: int) -> Optional[ast.expr]:
        candidates = [(ln, expr) for ln, expr in self._assignments.get(name, [])
                      if ln < before_line]
        if not candidates:
            return None
        return max(candidates, key=lambda item: item[0])[1]

    def _scan(self, expr: ast.AST, use_line: int, predicate, seen: frozenset,
              depth: int) -> bool:
        for node in ast.walk(expr):
            if predicate(node):
                return True
            if (depth < 4 and isinstance(node, ast.Name)
                    and node.id not in seen):
                resolved = self._resolve(node.id, use_line)
                if resolved is not None and self._scan(
                        resolved, use_line, predicate, seen | {node.id},
                        depth + 1):
                    return True
        return False

    def has_log_guard(self, expr: ast.AST, use_line: int) -> bool:
        def predicate(node: ast.AST) -> bool:
            if isinstance(node, ast.Call):
                name = terminal_name(node.func)
                return name in _GUARD_CALLS_LOG or name == "log_softmax"
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
                return any(_is_small_const(side) or _is_eps_name(side)
                           for side in (node.left, node.right))
            return False

        return self._scan(expr, use_line, predicate, frozenset(), 0)

    def has_exp_guard(self, expr: ast.AST, use_line: int) -> bool:
        def predicate(node: ast.AST) -> bool:
            if isinstance(node, ast.Call):
                return terminal_name(node.func) in _GUARD_CALLS_EXP
            if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
                return True
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
                return True
            return False

        return self._scan(expr, use_line, predicate, frozenset(), 0)

    def is_unguarded_reduction(self, expr: ast.AST, use_line: int) -> bool:
        """Denominator that is a bare sum/mean/norm reduction (no + eps)."""
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            return False  # reduction + eps: the idiomatic guard
        if isinstance(expr, ast.Call):
            return terminal_name(expr.func) in _REDUCTION_NAMES
        if isinstance(expr, ast.Name):
            resolved = self._resolve(expr.id, use_line)
            if resolved is not None:
                return self.is_unguarded_reduction(resolved, use_line)
        return False


def _loss_functions(ctx: ModuleContext) -> Iterator[ast.FunctionDef]:
    for fn in functions(ctx.tree):
        if LOSS_NAME_RE.search(fn.name):
            yield fn


# --------------------------------------------------------------------- #
# RA1xx — autograd graph safety
# --------------------------------------------------------------------- #


@register
class InPlaceTensorMutation(Rule):
    """RA101: only the substrate may mutate Tensor buffers in place."""

    id = "RA101"
    name = "tensor-inplace-mutation"
    severity = SEVERITY_ERROR
    summary = ("in-place mutation of Tensor.data/.grad (+=, slice assign, "
               "out=, ufunc.at) outside the autograd/nn substrate")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.is_substrate:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AugAssign) and is_buffer_access(node.target):
                yield self.finding(
                    ctx, node,
                    "in-place update of a Tensor buffer bypasses the autograd "
                    "tape; rebuild the value out-of-place or move this into "
                    "the substrate (repro.autograd / repro.nn)")
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Subscript)
                            and is_buffer_access(target)):
                        yield self.finding(
                            ctx, target,
                            "slice-assignment into a Tensor buffer mutates "
                            "tracked memory outside the tape")
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg == "out" and is_buffer_access(kw.value):
                        yield self.finding(
                            ctx, node,
                            "numpy out= aliasing a Tensor buffer mutates "
                            "tracked memory outside the tape")
                func = node.func
                if (isinstance(func, ast.Attribute) and func.attr == "at"
                        and node.args and is_buffer_access(node.args[0])):
                    yield self.finding(
                        ctx, node,
                        "ufunc.at scatters into a Tensor buffer outside "
                        "the tape")


@register
class DetachedDataArithmetic(Rule):
    """RA102: arithmetic on ``.data`` inside loss code detaches gradients."""

    id = "RA102"
    name = "detached-data-arithmetic"
    severity = SEVERITY_ERROR
    summary = ("arithmetic on Tensor.data inside loss code silently detaches "
               "the term from the gradient tape")

    def _wrapped_in_tensor(self, ctx: ModuleContext, node: ast.AST) -> bool:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.Call):
                name = terminal_name(ancestor.func)
                if name in ("Tensor", "detach"):
                    return True
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for fn in _loss_functions(ctx):
            for node in ast.walk(fn):
                if not isinstance(node, ast.BinOp):
                    continue
                for side in (node.left, node.right):
                    if is_buffer_access(side) and not self._wrapped_in_tensor(ctx, side):
                        yield self.finding(
                            ctx, side,
                            f"'.data' arithmetic in loss function "
                            f"'{fn.name}' detaches this term from the "
                            f"gradient tape; wrap an intentional constant "
                            f"in Tensor(...) or suppress with "
                            f"'# repro: noqa[RA102]' plus a justification")


@register
class MissingNoGrad(Rule):
    """RA103: inference entry points must not build autograd graphs."""

    id = "RA103"
    name = "missing-no-grad"
    severity = SEVERITY_ERROR
    summary = ("evaluation/snapshot entry points calling graph-building "
               "model methods without a no_grad() context")

    def _has_no_grad(self, fn: ast.FunctionDef) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        expr = expr.func
                    if terminal_name(expr) == "no_grad":
                        return True
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for fn in functions(ctx.tree):
            if not EVAL_NAME_RE.search(fn.name):
                continue
            if self._has_no_grad(fn):
                continue
            for node in ast.walk(fn):
                if (isinstance(node, ast.Call)
                        and terminal_name(node.func) in GRAPH_BUILDING_CALLS):
                    yield self.finding(
                        ctx, node,
                        f"'{fn.name}' looks like an inference entry point "
                        f"but calls graph-building "
                        f"'{terminal_name(node.func)}' outside a no_grad() "
                        f"context, recording a throwaway backward graph")
                    break  # one finding per function is enough


# --------------------------------------------------------------------- #
# RA2xx — randomness discipline
# --------------------------------------------------------------------- #


@register
class GlobalNumpyRandom(Rule):
    """RA201: draws must come from a threaded, seeded Generator."""

    id = "RA201"
    name = "global-np-random"
    severity = SEVERITY_ERROR
    summary = ("call into the legacy global np.random state instead of a "
               "seeded np.random.Generator")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if (len(parts) == 3 and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and parts[2] not in _NP_RANDOM_OK):
                yield self.finding(
                    ctx, node,
                    f"'{name}' draws from the global numpy RNG, breaking "
                    f"run-to-run reproducibility; thread a seeded "
                    f"np.random.Generator instead")


@register
class UnseededDefaultRng(Rule):
    """RA202: ``default_rng()`` without a seed is entropy-seeded."""

    id = "RA202"
    name = "unseeded-default-rng"
    severity = SEVERITY_ERROR
    summary = "np.random.default_rng() constructed without an explicit seed"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in ("np.random.default_rng", "numpy.random.default_rng",
                        "default_rng"):
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx, node,
                        "default_rng() with no seed draws OS entropy; every "
                        "run of an experiment would differ — pass a seed "
                        "derived from the experiment config")


# --------------------------------------------------------------------- #
# RA3xx — loss-code numerics
# --------------------------------------------------------------------- #


@register
class UnguardedLog(Rule):
    """RA301: ``log`` in loss code needs an epsilon/clip guard."""

    id = "RA301"
    name = "unguarded-log"
    severity = SEVERITY_ERROR
    summary = "np.log()/.log() in loss code without an epsilon or clip guard"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for fn in _loss_functions(ctx):
            scan = _GuardScan(fn)
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                arg: Optional[ast.AST] = None
                if name in ("np.log", "numpy.log") and node.args:
                    arg = node.args[0]
                elif (isinstance(node.func, ast.Attribute)
                      and node.func.attr == "log"
                      and dotted_name(node.func.value) not in ("np", "numpy",
                                                               "math")):
                    arg = node.func.value
                if arg is None:
                    continue
                if not scan.has_log_guard(arg, node.lineno):
                    yield self.finding(
                        ctx, node,
                        f"log of a possibly-zero quantity in loss function "
                        f"'{fn.name}'; clip the argument or add an epsilon "
                        f"(e.g. (x + 1e-9).log())")


@register
class UnguardedExp(Rule):
    """RA302: ``exp`` of unbounded logits in loss code overflows."""

    id = "RA302"
    name = "unguarded-exp"
    severity = SEVERITY_WARNING
    summary = ("np.exp()/.exp() of unshifted logits in loss code (overflow "
               "risk; subtract the max or clip first)")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for fn in _loss_functions(ctx):
            scan = _GuardScan(fn)
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                arg: Optional[ast.AST] = None
                if name in ("np.exp", "numpy.exp") and node.args:
                    arg = node.args[0]
                elif (isinstance(node.func, ast.Attribute)
                      and node.func.attr == "exp"
                      and dotted_name(node.func.value) not in ("np", "numpy",
                                                               "math")):
                    arg = node.func.value
                if arg is None:
                    continue
                if not scan.has_exp_guard(arg, node.lineno):
                    yield self.finding(
                        ctx, node,
                        f"exp of unshifted logits in loss function "
                        f"'{fn.name}' can overflow to inf; subtract the "
                        f"row max (stable-softmax idiom) or clip")


@register
class UnguardedDivision(Rule):
    """RA303: dividing by a bare reduction in loss code risks 0/0."""

    id = "RA303"
    name = "unguarded-division"
    severity = SEVERITY_WARNING
    summary = ("division by a bare sum()/norm()/mean() reduction in loss "
               "code without '+ eps'")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for fn in _loss_functions(ctx):
            scan = _GuardScan(fn)
            for node in ast.walk(fn):
                if not (isinstance(node, ast.BinOp)
                        and isinstance(node.op, ast.Div)):
                    continue
                if scan.is_unguarded_reduction(node.right, node.lineno):
                    yield self.finding(
                        ctx, node,
                        f"division by a bare reduction in loss function "
                        f"'{fn.name}' — a zero denominator yields nan/inf "
                        f"and poisons the whole parameter update; add "
                        f"'+ eps'")


# --------------------------------------------------------------------- #
# RA4xx — general hygiene
# --------------------------------------------------------------------- #


@register
class MutableDefaultArgument(Rule):
    """RA401: list/dict/set default arguments are shared across calls."""

    id = "RA401"
    name = "mutable-default-arg"
    severity = SEVERITY_ERROR
    summary = "mutable default argument (shared across calls)"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for fn in functions(ctx.tree):
            defaults = list(fn.args.defaults) + [
                d for d in fn.args.kw_defaults if d is not None
            ]
            for default in defaults:
                bad = isinstance(default, (ast.List, ast.Dict, ast.Set))
                if (isinstance(default, ast.Call)
                        and terminal_name(default.func) in ("list", "dict",
                                                            "set")):
                    bad = True
                if bad:
                    yield self.finding(
                        ctx, default,
                        f"mutable default in '{fn.name}' is evaluated once "
                        f"and shared across every call; default to None and "
                        f"construct inside the body")


@register
class OverbroadExcept(Rule):
    """RA402: bare/overbroad excepts hide substrate bugs."""

    id = "RA402"
    name = "overbroad-except"
    severity = SEVERITY_ERROR
    summary = "bare 'except:' or silently-swallowing 'except Exception'"

    def _swallows(self, handler: ast.ExceptHandler) -> bool:
        return all(
            isinstance(stmt, ast.Pass)
            or (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis)
            for stmt in handler.body
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt "
                    "and masks substrate bugs; name the exceptions")
            elif (isinstance(node.type, ast.Name)
                  and node.type.id in ("Exception", "BaseException")
                  and self._swallows(node)):
                yield self.finding(
                    ctx, node,
                    f"'except {node.type.id}: pass' silently swallows every "
                    f"failure; narrow the exception or handle it")


# --------------------------------------------------------------------- #
# RA9xx — compute-backend discipline
# --------------------------------------------------------------------- #

#: raw numpy GEMM-family entry points that bypass ``repro.backend``
_RAW_GEMM_CALLS = frozenset(
    {"dot", "vdot", "inner", "matmul", "einsum", "tensordot"}
)

#: ufuncs whose ``.at`` form scatters in place
_SCATTER_UFUNCS = frozenset(
    {"add", "subtract", "multiply", "divide", "maximum", "minimum"}
)

#: modules that *implement* the backend (or the substrate's own gather /
#: scatter internals) and therefore get to call BLAS directly
_BACKEND_IMPL_PREFIXES = ("repro.backend",)
_BACKEND_IMPL_MODULES = frozenset({"repro.autograd.tensor"})


@register
class RawBlasBypassesBackend(Rule):
    """RA901: GEMM/scatter must route through ``repro.backend.active``."""

    id = "RA901"
    name = "raw-blas-bypasses-backend"
    severity = SEVERITY_ERROR
    summary = ("direct np.dot/np.matmul/np.einsum/np.<ufunc>.at call "
               "bypasses the pluggable compute backend")

    def _exempt(self, ctx: ModuleContext) -> bool:
        return (ctx.module.startswith(_BACKEND_IMPL_PREFIXES)
                or ctx.module in _BACKEND_IMPL_MODULES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if self._exempt(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) == 2 and parts[0] in ("np", "numpy"):
                if parts[1] in _RAW_GEMM_CALLS:
                    yield self.finding(
                        ctx, node,
                        f"'{name}' calls BLAS directly, so backend selection "
                        f"(dtype, pooling, fusion) cannot reach it; use "
                        f"repro.backend.active.{parts[1]} "
                        f"(or the gemm/einsum backend ops)")
            elif (len(parts) == 3 and parts[0] in ("np", "numpy")
                    and parts[1] in _SCATTER_UFUNCS and parts[2] == "at"
                    and node.args and is_buffer_access(node.args[0])):
                # scatter into a Tensor buffer; scratch arrays are fine
                yield self.finding(
                    ctx, node,
                    f"'{name}' scatters into a Tensor buffer behind the "
                    f"backend's back; use repro.backend.active.scatter_add")
