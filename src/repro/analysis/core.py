"""Rule-engine core: findings, the rule registry, and per-module context.

The analyzer is purpose-built for this repository's numpy autograd
substrate: the invariants it enforces (no out-of-tape mutation of
``Tensor.data``, no global ``np.random`` state, epsilon-guarded loss
math, ``no_grad`` around inference-only recomputation) are exactly the
ones whose violation silently corrupts IMSR results without failing a
single unit test.

A rule is a class with an ``id`` (``RAxxx``), a ``severity``, and a
``check(ctx)`` generator yielding :class:`Finding` objects.  Rules are
registered with the :func:`register` decorator and run by
:mod:`repro.analysis.engine` over every module in the scanned tree.

Inline suppression uses ``# repro: noqa[RA101]`` (or a bare
``# repro: noqa`` to silence every rule) on the offending line;
grandfathered findings live in a committed baseline file instead
(:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: pseudo-rule id attached to unparseable files
PARSE_ERROR_RULE = "RA000"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)

#: modules allowed to mutate Tensor buffers in place — the autograd/nn
#: substrate itself plus checkpoint restoration
SUBSTRATE_PREFIXES = ("repro.autograd", "repro.nn")
SUBSTRATE_MODULES = ("repro.persistence",)


def noqa_directive(line_text: str) -> Optional[frozenset]:
    """Parse a ``# repro: noqa`` directive from one source line.

    Pure text — no AST needed — which is what lets the engine apply
    suppressions to cached findings without re-parsing the module.
    """
    match = _NOQA_RE.search(line_text)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return frozenset()
    return frozenset(r.strip().upper() for r in rules.split(",") if r.strip())


@dataclass
class Finding:
    """One rule violation at a concrete source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    source: str = ""

    def fingerprint(self) -> str:
        """Stable id for baseline matching: rule + file + source text.

        Line numbers are deliberately excluded so unrelated edits above a
        grandfathered finding do not invalidate its baseline entry.
        """
        key = f"{self.rule}:{Path(self.path).as_posix()}:{self.source.strip()}"
        return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} [{self.severity}] {self.message}")

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "source": self.source.strip(),
            "fingerprint": self.fingerprint(),
        }


def module_name_for(path: Path) -> str:
    """Best-effort dotted module name; falls back to the file stem."""
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        name = ".".join(parts[parts.index("repro"):])
        if name.endswith(".__init__"):
            name = name[: -len(".__init__")]
        return name
    return path.stem


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    path: Path
    display_path: str
    module: str
    tree: ast.AST
    lines: List[str]
    _parents: Dict[int, ast.AST] = field(default_factory=dict, repr=False)

    @classmethod
    def from_source(cls, source: str, path: Path,
                    display_path: Optional[str] = None) -> "ModuleContext":
        tree = ast.parse(source, filename=str(path))
        ctx = cls(
            path=path,
            display_path=display_path or str(path),
            module=module_name_for(path),
            tree=tree,
            lines=source.splitlines(),
        )
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                ctx._parents[id(child)] = parent
        return ctx

    @property
    def is_substrate(self) -> bool:
        """True for modules whitelisted to touch Tensor buffers directly."""
        return (self.module.startswith(SUBSTRATE_PREFIXES)
                or self.module in SUBSTRATE_MODULES
                or self.module in [p.rsplit(".", 1)[-1] for p in SUBSTRATE_MODULES])

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def noqa_for_line(self, lineno: int) -> Optional[frozenset]:
        """Suppression directive on a line: None (no directive), an empty
        frozenset (suppress everything), or a set of rule ids."""
        return noqa_directive(self.source_line(lineno))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(id(node))
        while current is not None:
            yield current
            current = self._parents.get(id(current))


class Rule:
    """Base class: subclass, set the metadata, implement ``check``."""

    id: str = "RA999"
    name: str = "unnamed"
    severity: str = SEVERITY_ERROR
    summary: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=ctx.display_path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            source=ctx.source_line(line),
        )


class ProjectRule(Rule):
    """A rule that reasons over the whole-project call graph.

    Subclasses implement :meth:`check_project` against a
    :class:`repro.analysis.summaries.ProjectAnalysis`; the per-module
    :meth:`check` is a no-op so project rules slot into the same
    registry, ``--select``, noqa, and baseline machinery as module
    rules.
    """

    scope = "project"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        raise NotImplementedError


#: rule id -> rule instance, in registration order
RULE_REGISTRY: Dict[str, Rule] = {}


def register(cls):
    """Class decorator adding a rule (as a singleton) to the registry."""
    instance = cls()
    if instance.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {instance.id}")
    RULE_REGISTRY[instance.id] = instance
    return cls


def all_rules() -> List[Rule]:
    return list(RULE_REGISTRY.values())
