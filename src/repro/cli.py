"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show available datasets, base models, strategies, and experiments.
``stats DATASET``
    Print the Table-II-style statistics of a dataset preset.
``run DATASET MODEL STRATEGY``
    Execute one incremental-learning run and print per-span metrics.
    ``--checkpoint-dir DIR`` makes the run journaled and crash-safe;
    ``--resume`` continues an interrupted run from the last good span.
``experiment ID``
    Regenerate one of the paper's tables/figures (e.g. ``table3``,
    ``fig5``) and print it with its shape checks.
``checkpoint-info PATH [--verify]``
    Inspect a checkpoint written by :mod:`repro.persistence`; with
    ``--verify``, re-hash every array against its manifest.
``lint [PATHS...]``
    Run the repository's static-analysis rules (:mod:`repro.analysis`).
``contracts list``
    Show every registered ``@shape_contract`` (:mod:`repro.contracts`).
``trace summarize DIR``
    Render the spans, decision events, and metrics of a trace written
    with ``run --trace-dir`` (:mod:`repro.obs`); ``--json`` emits the
    raw summary structure instead; ``--stream`` prints only the
    streaming-pipeline rollup (quarantine/backoff/degradation counts);
    ``--diff A B`` compares two traces instead (fingerprint-aware
    span-duration and counter deltas).
``trace flame DIR``
    Export a profiled trace as a flamegraph: collapsed stacks
    (``--out``), speedscope JSON (``--speedscope``), and the critical
    path through the span tree (``--critical-path``).
``stream run DATASET MODEL STRATEGY``
    Prequential (test-then-learn) streaming run over the dataset's
    event stream with the full robustness envelope — validation gate +
    quarantine, offset-journaled exactly-once commits, retry-with-
    backoff, graceful degradation (:mod:`repro.stream`).
    ``--checkpoint-dir`` + ``--resume`` continue a crashed run
    metric-identically from its last committed interval.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .data import DATASET_NAMES, compute_stats, load_dataset
from .experiments import (
    EXPERIMENTS,
    default_config,
    format_table,
    get_experiment,
    make_strategy,
    render_shape_checks,
    run_strategy,
)
from .incremental import STRATEGY_REGISTRY
from .models import MODEL_REGISTRY
from .obs.log import configure_logging, get_logger

logger = get_logger(__name__)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IMSR reproduction (Wang & Shen, ICDE 2023)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list datasets/models/strategies/experiments")

    p_stats = sub.add_parser("stats", help="dataset statistics (Table II)")
    p_stats.add_argument("dataset", choices=DATASET_NAMES)
    p_stats.add_argument("--scale", type=float, default=1.0)

    p_run = sub.add_parser("run", help="one incremental-learning run")
    p_run.add_argument("dataset", choices=DATASET_NAMES)
    p_run.add_argument("model", choices=sorted(MODEL_REGISTRY))
    p_run.add_argument("strategy", choices=sorted(STRATEGY_REGISTRY))
    p_run.add_argument("--scale", type=float, default=1.0)
    p_run.add_argument("--epochs", type=int, default=10,
                       help="pretraining epochs (incremental = 40%%)")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--dim", type=int, default=32)
    p_run.add_argument("--interests", type=int, default=4,
                       help="initial interests per user (K)")
    p_run.add_argument("--c1", type=float, default=None,
                       help="IMSR puzzlement threshold")
    p_run.add_argument("--c2", type=float, default=None,
                       help="IMSR trimming threshold")
    p_run.add_argument("--delta-k", type=int, default=None,
                       help="IMSR interests added on expansion")
    p_run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="journal the run: one atomic checkpoint per "
                            "span plus journal.json in DIR")
    p_run.add_argument("--resume", action="store_true",
                       help="continue an interrupted run from the last "
                            "good span in --checkpoint-dir")
    p_run.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="record spans, decision events, and metrics "
                            "to DIR/trace.jsonl (repro.obs)")
    p_run.add_argument("--profile", action="store_true",
                       help="op-level profiling: kernel/backend-op "
                            "timings, FLOPs, memory (repro.obs.prof); "
                            "prints the attribution table and, with "
                            "--trace-dir, folds op stats into the trace")

    p_exp = sub.add_parser("experiment",
                           help="regenerate a paper table/figure")
    p_exp.add_argument("experiment_id", choices=sorted(EXPERIMENTS))
    p_exp.add_argument("--scale", type=float, default=1.0)
    p_exp.add_argument("--epochs", type=int, default=10)

    p_ckpt = sub.add_parser("checkpoint-info", help="inspect a checkpoint")
    p_ckpt.add_argument("path")
    p_ckpt.add_argument("--verify", action="store_true",
                        help="re-hash every array against the manifest")

    p_lint = sub.add_parser("lint", help="run the static-analysis rules")
    p_lint.add_argument("paths", nargs="*",
                        help="files/directories to analyze (default: src)")
    p_lint.add_argument("--format", choices=("text", "json", "github", "sarif"),
                        default="text", dest="fmt")
    p_lint.add_argument("--select", default=None, metavar="RULES")
    p_lint.add_argument("--baseline", default=None, metavar="FILE")
    p_lint.add_argument("--no-baseline", action="store_true")
    p_lint.add_argument("--exclude", action="append", default=[],
                        metavar="NAME")
    p_lint.add_argument("--write-baseline", action="store_true")
    p_lint.add_argument("--prune-baseline", action="store_true")
    p_lint.add_argument("--fail-stale", action="store_true")
    p_lint.add_argument("--call-graph", choices=("dot", "json"),
                        default=None, metavar="FMT")
    p_lint.add_argument("--cache", default=None, metavar="FILE")
    p_lint.add_argument("--no-cache", action="store_true")
    p_lint.add_argument("--list-rules", action="store_true")

    p_contracts = sub.add_parser(
        "contracts", help="inspect the shape-contract registry")
    contracts_sub = p_contracts.add_subparsers(dest="contracts_command",
                                               required=True)
    contracts_sub.add_parser("list", help="print every registered contract")

    p_trace = sub.add_parser("trace", help="inspect an observability trace")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_summarize = trace_sub.add_parser(
        "summarize", help="render a trace directory's spans/events/metrics")
    p_summarize.add_argument("directory", nargs="?", default=None,
                             help="directory holding trace.jsonl (or the "
                                  "file itself)")
    p_summarize.add_argument("--json", action="store_true",
                             help="emit the raw summary structure as JSON")
    p_summarize.add_argument("--stream", action="store_true",
                             help="print only the streaming-pipeline "
                                  "rollup (quarantine/backoff/degradation "
                                  "counts per run)")
    p_summarize.add_argument("--diff", nargs=2, metavar=("A", "B"),
                             default=None,
                             help="compare two traces instead of "
                                  "summarizing one: fingerprint match, "
                                  "per-span duration deltas, changed "
                                  "counters")
    p_flame = trace_sub.add_parser(
        "flame", help="flamegraph export for a profiled trace")
    p_flame.add_argument("directory",
                         help="directory holding trace.jsonl (or the "
                              "file itself)")
    p_flame.add_argument("--out", default=None, metavar="FILE",
                         help="write collapsed stacks (one 'a;b;c µs' "
                              "line per stack) to FILE instead of stdout")
    p_flame.add_argument("--speedscope", default=None, metavar="FILE",
                         help="also write a speedscope-format JSON "
                              "profile to FILE")
    p_flame.add_argument("--critical-path", action="store_true",
                         help="print the heaviest root-to-leaf span "
                              "chain instead of collapsed stacks")

    p_stream = sub.add_parser(
        "stream", help="resilient prequential streaming (repro.stream)")
    stream_sub = p_stream.add_subparsers(dest="stream_command", required=True)
    p_stream_run = stream_sub.add_parser(
        "run", help="test-then-learn over the dataset's event stream")
    p_stream_run.add_argument("dataset", choices=DATASET_NAMES)
    p_stream_run.add_argument("model", choices=sorted(MODEL_REGISTRY))
    p_stream_run.add_argument("strategy", choices=sorted(STRATEGY_REGISTRY))
    p_stream_run.add_argument("--scale", type=float, default=1.0)
    p_stream_run.add_argument("--epochs", type=int, default=10,
                              help="pretraining epochs before streaming")
    p_stream_run.add_argument("--seed", type=int, default=0)
    p_stream_run.add_argument("--dim", type=int, default=32)
    p_stream_run.add_argument("--interests", type=int, default=4)
    p_stream_run.add_argument("--events", type=int, default=None,
                              help="stream only the first N events")
    p_stream_run.add_argument("--checkpoint-every", type=int, default=32,
                              help="events per commit interval")
    p_stream_run.add_argument("--window", type=int, default=64,
                              help="sliding-window length for recall/NDCG")
    p_stream_run.add_argument("--min-window-recall", type=float, default=0.0,
                              help="degrade to score-only below this "
                                   "sliding-window recall (0 disables)")
    p_stream_run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                              help="offset-journal the run: one atomic "
                                   "checkpoint per interval plus "
                                   "stream-journal.json in DIR")
    p_stream_run.add_argument("--resume", action="store_true",
                              help="continue an interrupted stream from "
                                   "its last committed interval")
    p_stream_run.add_argument("--trace-dir", default=None, metavar="DIR",
                              help="record spans/events/metrics (repro.obs)")
    p_stream_run.add_argument("--json", action="store_true",
                              help="emit the result summary as JSON")

    return parser


def cmd_list() -> int:
    print("datasets:   ", ", ".join(DATASET_NAMES))
    print("models:     ", ", ".join(sorted(MODEL_REGISTRY)))
    print("strategies: ", ", ".join(sorted(STRATEGY_REGISTRY)))
    print("experiments:", ", ".join(sorted(EXPERIMENTS)))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    _, split = load_dataset(args.dataset, scale=args.scale)
    stats = compute_stats(args.dataset, split)
    print(format_table([stats.as_row()]))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    configure_logging()
    if args.resume and args.checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    _, split = load_dataset(args.dataset, scale=args.scale)
    config = default_config(
        epochs_pretrain=args.epochs,
        epochs_incremental=max(2, int(round(args.epochs * 0.4))),
        seed=args.seed,
    )
    strategy_kwargs = {}
    for key, value in (("c1", args.c1), ("c2", args.c2),
                       ("delta_k", args.delta_k)):
        if value is not None:
            if args.strategy != "IMSR":
                print(f"warning: --{key} only applies to IMSR", file=sys.stderr)
            else:
                strategy_kwargs[key] = value
    strategy = make_strategy(
        args.strategy, args.model, split, config,
        model_kwargs={"dim": args.dim, "num_interests": args.interests},
        strategy_kwargs=strategy_kwargs,
    )
    result = run_strategy(strategy, split, args.dataset, args.model,
                          checkpoint_dir=args.checkpoint_dir,
                          resume=args.resume,
                          trace_dir=args.trace_dir,
                          profile=args.profile)
    rows = [
        {"span": t + 1, "HR@20": r.hr, "NDCG@20": r.ndcg,
         "cases": r.num_cases, "mean K": result.interest_counts[t]}
        for t, r in enumerate(result.per_span)
    ]
    print(format_table(rows))
    print(f"average: HR@20={result.hr:.4f}  NDCG@20={result.ndcg:.4f}  "
          f"inference={result.inference_time * 1000:.2f} ms/user")
    # diagnostics go through the repro logger (stderr), not stdout, so
    # result tables stay machine-parseable and incidents are filterable
    if result.resumed_spans:
        logger.info("resumed: spans %s reused from %s/journal.json",
                    result.resumed_spans, args.checkpoint_dir)
    for incident in result.incidents:
        logger.warning("incident: span %s %s -> %s", incident["span"],
                       incident["kind"], incident["action"])
    if args.profile and result.profile is not None:
        from .obs import render_prof_summary

        print(render_prof_summary(result.profile))
    if args.trace_dir is not None:
        print(f"trace: {args.trace_dir}/trace.jsonl "
              f"(inspect with `repro trace summarize {args.trace_dir}`)")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    experiment = get_experiment(args.experiment_id)
    if args.experiment_id == "table2":
        rows = []
        for name in DATASET_NAMES:
            _, split = load_dataset(name, scale=args.scale)
            rows.append(compute_stats(name, split).as_row())
        print(format_table(rows))
        return 0
    config = default_config(
        epochs_pretrain=args.epochs,
        epochs_incremental=max(2, int(round(args.epochs * 0.4))),
    )
    result = experiment.driver(scale=args.scale, config=config)
    print(result.format())
    checks = getattr(result, "shape_checks", None)
    if callable(checks):
        print(render_shape_checks(checks()))
    return 0


def cmd_checkpoint_info(args: argparse.Namespace) -> int:
    from .persistence import CheckpointError, checkpoint_info

    try:
        meta = checkpoint_info(args.path, verify=args.verify)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for key, value in meta.items():
        if key == "users":
            print(f"users: {len(value)}")
        elif key == "arrays":
            print(f"arrays: {len(value)} checksummed")
        elif key == "rng":
            print(f"rng: {', '.join(sorted(value))}")
        else:
            print(f"{key}: {value}")
    if args.verify:
        print("verification: OK (whole-file SHA-256 + per-array checksums)")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.cli import main as analysis_main

    argv: List[str] = list(args.paths)
    argv += ["--format", args.fmt]
    if args.select:
        argv += ["--select", args.select]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.no_baseline:
        argv.append("--no-baseline")
    for name in args.exclude:
        argv += ["--exclude", name]
    if args.write_baseline:
        argv.append("--write-baseline")
    if args.prune_baseline:
        argv.append("--prune-baseline")
    if args.fail_stale:
        argv.append("--fail-stale")
    if args.call_graph:
        argv += ["--call-graph", args.call_graph]
    if args.cache:
        argv += ["--cache", args.cache]
    if args.no_cache:
        argv.append("--no-cache")
    if args.list_rules:
        argv.append("--list-rules")
    return analysis_main(argv)


def cmd_contracts(args: argparse.Namespace) -> int:
    from .contracts import checking_enabled, load_annotated, registry_rows

    if args.contracts_command == "list":
        load_annotated()
        rows = registry_rows()
        if not rows:
            print("no registered contracts")
            return 0
        width_mod = max(len(m) for m, _, _ in rows)
        width_fn = max(len(q) for _, q, _ in rows)
        for module, qualname, spec in rows:
            print(f"{module:<{width_mod}}  {qualname:<{width_fn}}  {spec}")
        state = "on" if checking_enabled() else "off"
        print(f"{len(rows)} contract(s); runtime enforcement is {state} "
              f"(REPRO_CHECK_SHAPES / repro.contracts.enforce)")
        return 0
    raise AssertionError(
        f"unhandled contracts command {args.contracts_command!r}")


def cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .obs import (
        TraceError,
        collapsed_stacks,
        critical_path,
        diff_traces,
        read_trace,
        render_critical_path,
        render_diff,
        render_stream_summary,
        render_summary,
        speedscope_profile,
        summarize_trace,
    )

    if args.trace_command == "summarize":
        if args.diff is not None:
            try:
                diff = diff_traces(args.diff[0], args.diff[1])
            except TraceError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            if args.json:
                print(json.dumps(diff, indent=2, sort_keys=True))
            else:
                print(render_diff(diff))
            return 0
        if args.directory is None:
            print("error: a trace directory (or --diff A B) is required",
                  file=sys.stderr)
            return 2
        try:
            summary = summarize_trace(args.directory)
        except TraceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.stream:
            if args.json:
                print(json.dumps(summary.get("stream"), indent=2,
                                 sort_keys=True))
            else:
                print(render_stream_summary(summary))
        elif args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(render_summary(summary))
        return 0
    if args.trace_command == "flame":
        try:
            events, _ = read_trace(args.directory)
        except TraceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.speedscope is not None:
            profile = speedscope_profile(events, name=args.directory)
            with open(args.speedscope, "w", encoding="utf-8") as fh:
                json.dump(profile, fh)
            print(f"speedscope profile: {args.speedscope}", file=sys.stderr)
        if args.critical_path:
            print(render_critical_path(critical_path(events)))
            return 0
        stacks = collapsed_stacks(events)
        if args.out is not None:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write("\n".join(stacks) + ("\n" if stacks else ""))
            print(f"collapsed stacks: {args.out} ({len(stacks)} line(s))",
                  file=sys.stderr)
        else:
            for line in stacks:
                print(line)
        return 0
    raise AssertionError(f"unhandled trace command {args.trace_command!r}")


def cmd_stream(args: argparse.Namespace) -> int:
    import json

    from .stream import StreamConfig, events_from_split, run_stream

    configure_logging()
    if args.resume and args.checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    _, split = load_dataset(args.dataset, scale=args.scale)
    config = default_config(
        epochs_pretrain=args.epochs,
        epochs_incremental=max(2, int(round(args.epochs * 0.4))),
        seed=args.seed,
    )
    strategy = make_strategy(
        args.strategy, args.model, split, config,
        model_kwargs={"dim": args.dim, "num_interests": args.interests},
    )
    events = events_from_split(split, seed=args.seed)
    if args.events is not None:
        events = events[:args.events]
    stream_config = StreamConfig(
        checkpoint_every=args.checkpoint_every,
        window=args.window,
        min_window_recall=args.min_window_recall,
    )
    result = run_stream(
        strategy, events=events, config=stream_config,
        dataset_name=args.dataset, model_name=args.model,
        checkpoint_dir=args.checkpoint_dir, resume=args.resume,
        trace_dir=args.trace_dir)
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        rows = [
            {"interval": r.interval, "offset": r.offset,
             "trained": r.trained, "quarantined": r.quarantined,
             "mode": r.mode,
             "window HR@20": (f"{r.window_recall:.4f}"
                              if r.window_recall is not None else "-")}
            for r in result.intervals
        ]
        print(format_table(rows))
        recall = (f"{result.window_recall:.4f}"
                  if result.window_recall is not None else "-")
        print(f"stream: {result.events} events, {result.scored} scored, "
              f"{result.trained} trained, "
              f"{result.quarantined_total} quarantined, "
              f"window HR@20={recall}, mode={result.mode}")
    if result.resumed_from is not None:
        logger.info("resumed: interval %s reused from %s",
                    result.resumed_from, args.checkpoint_dir)
    if result.degraded_spells:
        logger.warning("degraded %s time(s), recovered %s time(s)",
                       result.degraded_spells, result.recoveries)
    if args.trace_dir is not None:
        print(f"trace: {args.trace_dir}/trace.jsonl (inspect with "
              f"`repro trace summarize --stream {args.trace_dir}`)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "stats":
        return cmd_stats(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "experiment":
        return cmd_experiment(args)
    if args.command == "checkpoint-info":
        return cmd_checkpoint_info(args)
    if args.command == "lint":
        return cmd_lint(args)
    if args.command == "contracts":
        return cmd_contracts(args)
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "stream":
        return cmd_stream(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
