"""IMSR reproduction: Incremental Learning for Multi-Interest Sequential
Recommendation (Wang & Shen, ICDE 2023), built on a from-scratch numpy
substrate.

Layered public API:

* :mod:`repro.autograd` — reverse-mode autodiff engine (replaces PyTorch);
* :mod:`repro.nn` — modules, layers, optimizers;
* :mod:`repro.data` — synthetic interest world + time-span protocol;
* :mod:`repro.models` — MIND, ComiRec-DR, ComiRec-SA base MSR models;
* :mod:`repro.incremental` — FR, FT, SML, ADER, and **IMSR** (EIR/NID/PIT);
* :mod:`repro.lifelong` — MIMN and LimaRec baselines;
* :mod:`repro.eval` — HR/NDCG, span protocol, significance tests;
* :mod:`repro.experiments` — drivers regenerating every table and figure;
* :mod:`repro.analysis` — static analysis enforcing the substrate's
  autograd/randomness/numerics contracts (``repro lint``);
* :mod:`repro.persistence` — crash-safe journaled checkpoints (atomic
  writes, SHA-256 manifests, resume);
* :mod:`repro.faults` — seeded, deterministic fault injection proving
  the crash-safety properties;
* :mod:`repro.obs` — structured tracing, metrics, and decision telemetry
  (hierarchical spans, JSONL traces, ``repro trace summarize``).
"""

from . import analysis, autograd, backend, data, eval, experiments, incremental, lifelong, models, nn
from . import faults, obs, persistence, sanitize

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "autograd",
    "backend",
    "nn",
    "data",
    "models",
    "incremental",
    "lifelong",
    "eval",
    "experiments",
    "persistence",
    "faults",
    "obs",
    "sanitize",
    "__version__",
]
