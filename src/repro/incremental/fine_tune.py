"""Fine-tuning (FT): inherit parameters, train on new interactions only.

The vanilla incremental baseline from Section III.  It forgets existing
interests over time (the paper's Figure 4) because nothing constrains how
far previously learned interests drift.
"""

from __future__ import annotations

import time

from .strategy import IncrementalStrategy, build_payloads


class FineTune(IncrementalStrategy):
    """Inherit ``W^{t-1}`` and fine-tune with span ``t``'s data."""

    name = "FT"

    def train_span(self, t: int) -> float:
        span = self.split.spans[t - 1]
        for user in span.user_ids():
            self.states[user].begin_span()
        payloads = build_payloads(span, self.config)
        start = time.perf_counter()
        self._train(payloads, epochs=self.config.epochs_incremental)
        elapsed = time.perf_counter() - start
        self._refresh_snapshots(span)
        self.train_times[t] = elapsed
        return elapsed
