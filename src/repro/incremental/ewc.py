"""EWC — Elastic Weight Consolidation (Kirkpatrick et al., 2017).

A representative of the *regularization-based* incremental-learning
family the paper's related work discusses (and argues is of limited use
for incremental MSR): after each span, the diagonal Fisher information
of the shared parameters is estimated on that span's data; subsequent
spans add the quadratic penalty

    L_EWC = (λ/2) Σ_p F_p (θ_p − θ_p*)²

to the fine-tuning objective.  EWC constrains *parameters* rather than
user interest representations and cannot grow the interest count —
exactly the two limitations IMSR's EIR/NID/PIT address.  The extension
benchmark quantifies that claim.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from ..autograd import Tensor
from ..models.base import MSRModel, UserState
from ..sanitize import capture as _capture
from .strategy import IncrementalStrategy, TrainConfig, UserPayload, build_payloads


class EWC(IncrementalStrategy):
    """Fine-tuning with a diagonal-Fisher quadratic penalty."""

    name = "EWC"

    def __init__(self, model: MSRModel, split, config: TrainConfig,
                 ewc_weight: float = 10.0, fisher_samples: int = 64):
        super().__init__(model, split, config)
        self.ewc_weight = ewc_weight
        self.fisher_samples = fisher_samples
        #: parameter name -> diagonal Fisher estimate (running average)
        self.fisher: Dict[str, np.ndarray] = {}
        #: parameter name -> anchor values θ* from the previous span
        self.anchors: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    def extra_state(self):
        state = super().extra_state()
        for name, arr in sorted(self.fisher.items()):
            state[f"fisher/{name}"] = arr
        for name, arr in sorted(self.anchors.items()):
            state[f"anchor/{name}"] = arr
        return state

    def load_extra_state(self, arrays):
        arrays = dict(arrays)
        fisher = {k[len("fisher/"):]: _capture(arrays.pop(k).copy())
                  for k in list(arrays) if k.startswith("fisher/")}
        anchors = {k[len("anchor/"):]: _capture(arrays.pop(k).copy())
                   for k in list(arrays) if k.startswith("anchor/")}
        super().load_extra_state(arrays)
        # a pre-extra-state (v1) checkpoint legitimately has neither —
        # EWC saved before any _estimate_fisher() call has empty dicts
        self.fisher = fisher
        self.anchors = anchors

    # ------------------------------------------------------------------ #
    def _estimate_fisher(self, payloads: List[UserPayload]) -> None:
        """Diagonal Fisher ≈ mean squared gradient of the loss over a
        sample of the span's users."""
        rng = np.random.default_rng(self.config.seed + 31)
        if not payloads:
            return
        sample_idx = rng.choice(
            len(payloads), size=min(self.fisher_samples, len(payloads)),
            replace=False,
        )
        accum = {
            name: np.zeros_like(param.data)
            for name, param in self.model.named_parameters()
        }
        count = 0
        for idx in sample_idx:
            payload = payloads[int(idx)]
            state = self.states[payload.user]
            self.model.zero_grad()
            interests = self.model.compute_interests(state, payload.history)
            negatives = np.stack(
                [self.sampler.sample(t) for t in payload.targets]
            )
            loss = self.model.loss_targets(interests, payload.targets, negatives)
            loss.backward()
            for name, param in self.model.named_parameters():
                if param.grad is not None:
                    accum[name] += param.grad ** 2
            count += 1
        if count == 0:
            return
        # sorted: the reduction order of this dict is part of the
        # determinism contract (RA7xx), not an accident of insertion order
        for name in sorted(accum):
            new = accum[name] / count
            if name in self.fisher:  # running average across spans
                self.fisher[name] = _capture(0.5 * (self.fisher[name] + new))
            else:
                self.fisher[name] = _capture(new)
        self.anchors = {name: _capture(arr)
                        for name, arr in sorted(self.model.state_dict().items())}

    def _penalty(self) -> Optional[Tensor]:
        """The EWC quadratic penalty over the shared parameters."""
        if not self.fisher:
            return None
        total: Optional[Tensor] = None
        for name, param in self.model.named_parameters():
            fisher = self.fisher.get(name)
            anchor = self.anchors.get(name)
            if fisher is None or anchor is None:
                continue
            if fisher.shape != param.data.shape:
                continue
            diff = param - Tensor(anchor)
            term = (Tensor(fisher) * diff * diff).sum()
            total = term if total is None else total + term
        if total is None:
            return None
        return total * (0.5 * self.ewc_weight)

    # ------------------------------------------------------------------ #
    def pretrain(self) -> float:
        elapsed = super().pretrain()
        self._estimate_fisher(build_payloads(self.split.pretrain, self.config))
        return elapsed

    def train_span(self, t: int) -> float:
        span = self.split.spans[t - 1]
        for user in span.user_ids():
            self.states[user].begin_span()
        payloads = build_payloads(span, self.config)

        def penalty_hook(state: UserState, interests: Tensor,
                         payload: UserPayload) -> Optional[Tensor]:
            return self._penalty()

        start = time.perf_counter()
        self._train(payloads, epochs=self.config.epochs_incremental,
                    loss_hook=penalty_hook)
        elapsed = time.perf_counter() - start
        self._refresh_snapshots(span)
        self._estimate_fisher(payloads)
        self.train_times[t] = elapsed
        return elapsed
