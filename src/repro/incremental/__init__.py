"""Incremental learning strategies compared in the paper."""

from .strategy import IncrementalStrategy, TrainConfig, UserPayload, build_payloads
from .fine_tune import FineTune
from .full_retrain import FullRetrain
from .sml import SML
from .ader import ADER
from .ewc import EWC
from .imsr import IMSR
from .imsr_replay import IMSRReplay

STRATEGY_REGISTRY = {
    "FT": FineTune,
    "FR": FullRetrain,
    "SML": SML,
    "ADER": ADER,
    "IMSR": IMSR,
    "EWC": EWC,
    "IMSR+Replay": IMSRReplay,
}

__all__ = [
    "IncrementalStrategy",
    "TrainConfig",
    "UserPayload",
    "build_payloads",
    "FineTune",
    "FullRetrain",
    "SML",
    "ADER",
    "IMSR",
    "EWC",
    "IMSRReplay",
    "STRATEGY_REGISTRY",
]
