"""Full retraining (FR): reinitialize and train on all data seen so far.

The upper-baseline strategy: in span ``t`` the model parameters are
reinitialized and trained on the pre-training window plus incremental
spans ``1..t``.  Its training cost therefore grows with ``t`` (Table V)
while its accuracy is the reference the incremental methods chase.

The paper keeps FR's per-user interest counts equal to IMSR's; pass an
``interest_counts`` mapping (from a finished IMSR run) to reproduce that,
otherwise the base ``K0`` is used.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..models.base import MSRModel
from .strategy import IncrementalStrategy, TrainConfig, UserPayload


class FullRetrain(IncrementalStrategy):
    """Reinitialize every span; train on the cumulative dataset."""

    name = "FR"

    def __init__(self, model: MSRModel, split, config: TrainConfig,
                 model_factory=None,
                 interest_counts: Optional[Dict[int, Dict[int, int]]] = None,
                 target_cap: int = 60):
        super().__init__(model, split, config)
        if model_factory is None:
            raise ValueError("FullRetrain needs a model_factory to reinitialize")
        self._model_factory = model_factory
        #: optional span -> (user -> K) sync with IMSR's interest counts
        self._interest_counts = interest_counts or {}
        #: FR sees the cumulative stream, so it gets a higher target cap
        #: than the incremental strategies (whose spans are short)
        self.target_cap = target_cap

    def _cumulative_payloads(self, t: int) -> List[UserPayload]:
        """History/target payloads over all data through span ``t``."""
        payloads: List[UserPayload] = []
        per_user: Dict[int, List[int]] = {}
        for user in self.split.pretrain.user_ids():
            per_user.setdefault(user, []).extend(
                self.split.pretrain.users[user].all_items
            )
        for span in self.split.spans[:t]:
            for user in span.user_ids():
                per_user.setdefault(user, []).extend(span.users[user].all_items)
        for user, items in sorted(per_user.items()):
            if len(items) < 2:
                continue
            cut = max(1, int(round(len(items) * self.config.history_fraction)))
            cut = min(cut, len(items) - 1)
            targets = items[cut:]
            if len(targets) > self.target_cap:
                targets = targets[-self.target_cap:]
            payloads.append(UserPayload(user=user, history=items[:cut], targets=targets))
        return payloads

    def train_span(self, t: int) -> float:
        # reinitialize the model and all user states
        self.model = self._model_factory()
        self.states = self.model.init_all_users(self._all_user_ids())
        counts = self._interest_counts.get(t)
        if counts:
            for user, k in counts.items():
                state = self.states.get(user)
                if state is not None and k > state.num_interests:
                    self.model.expand_user(state, k - state.num_interests, span=t)

        payloads = self._cumulative_payloads(t)
        start = time.perf_counter()
        # training from scratch needs pretraining-scale epochs — this is
        # exactly why FR's per-span cost dwarfs the incremental methods'
        self._train(payloads, epochs=self.config.epochs_pretrain)
        elapsed = time.perf_counter() - start
        # snapshot from each user's full cumulative sequence
        for payload in payloads:
            state = self.states[payload.user]
            interests = self.model.compute_interests(
                state, payload.history + payload.targets
            )
            state.interests = interests.data.copy()
        self.train_times[t] = elapsed
        return elapsed
