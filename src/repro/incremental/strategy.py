"""Base class and shared training loop for incremental learning strategies.

Every strategy (FR, FT, SML, ADER, IMSR, and the ablation variants) shares
the same skeleton, mirroring the paper's protocol:

1. ``pretrain()`` on the ``[0, alpha*Z]`` window;
2. for each incremental span ``t``: ``train_span(t)`` using (at least) the
   span's new interactions;
3. after each span, user interest snapshots are refreshed and the model is
   evaluated on span ``t+1``'s test items (handled by the experiment
   runner via :meth:`score_user`).

The paper trains each user by splitting their in-span interactions into a
historical part (interests are extracted from it) and a target-item set
(all scored against those interests) — see Section IV-E.  That split is
what :class:`UserPayload` captures.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..autograd import Tensor, no_grad
from ..data.sampler import NegativeSampler
from ..data.schema import SpanDataset, TemporalSplit
from ..faults import fire as _fault_probe
from ..models.base import MSRModel, UserState
from ..nn import Adam, clip_grad_norm
from ..obs import prof as _prof
from ..obs import trace as obs
from ..sanitize import capture as _capture


@dataclass
class TrainConfig:
    """Hyperparameters shared by all strategies."""

    epochs_pretrain: int = 12
    epochs_incremental: int = 4
    lr: float = 0.02
    num_negatives: int = 10
    #: fraction of a user's in-span items used as extraction history;
    #: the remainder become the target set (paper Section IV-E)
    history_fraction: float = 0.5
    grad_clip: float = 5.0
    seed: int = 0
    #: cap on per-user targets per span (keeps epochs bounded)
    max_targets: int = 24
    #: stop an epoch loop early when validation HR@20 stops improving
    #: (the paper performs early stopping during training)
    early_stopping: bool = False
    patience: int = 2
    #: users per optimizer step.  1 (default) is the paper-exact per-user
    #: loop; >1 pads a group of users into one batched autograd forward
    #: (see repro.models.batched_train) and takes one step per group —
    #: same accumulated gradient to float tolerance, different RNG
    #: consumption (negatives drawn per group, not per target)
    users_per_batch: int = 1
    #: update only the embedding rows touched each step (SparseAdam)
    #: instead of dense Adam.  Documented deviation: untouched rows skip
    #: their momentum-tail decay between touches (see docs/PERFORMANCE.md)
    sparse_adam: bool = False
    #: refresh user interest snapshots with one batched no-grad
    #: extraction per span instead of per user.  Float-tolerance
    #: equivalent, not bitwise — hence opt-in
    batched_snapshots: bool = False


@dataclass
class UserPayload:
    """One user's training material for one span."""

    user: int
    history: List[int]
    targets: List[int]


def build_payloads(span: SpanDataset, config: TrainConfig,
                   include_val: bool = True) -> List[UserPayload]:
    """Split each user's in-span items into history + target set."""
    payloads: List[UserPayload] = []
    for user in span.user_ids():
        data = span.users[user]
        items = list(data.train_items)
        if include_val and data.val_item is not None:
            items.append(data.val_item)
        if len(items) < 2:
            continue
        cut = max(1, int(round(len(items) * config.history_fraction)))
        cut = min(cut, len(items) - 1)
        targets = items[cut:]
        if len(targets) > config.max_targets:
            targets = targets[-config.max_targets:]
        payloads.append(UserPayload(user=user, history=items[:cut], targets=targets))
    return payloads


def merge_payload_items(*payload_lists: Sequence[UserPayload]) -> Dict[int, List[int]]:
    """Per-user concatenation of history+targets across payload lists."""
    merged: Dict[int, List[int]] = {}
    for payloads in payload_lists:
        for p in payloads:
            merged.setdefault(p.user, []).extend(p.history + p.targets)
    return merged


def encode_json_state(payload) -> np.ndarray:
    """JSON-serializable object -> uint8 array, for checkpoint storage."""
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return np.frombuffer(blob, dtype=np.uint8)


def decode_json_state(arr: np.ndarray):
    """Inverse of :func:`encode_json_state`."""
    return json.loads(np.ascontiguousarray(arr, dtype=np.uint8)
                      .tobytes().decode("utf-8"))


class IncrementalStrategy:
    """Skeleton for the compared learning strategies."""

    name = "base"

    def __init__(self, model: MSRModel, split: TemporalSplit, config: TrainConfig):
        self.model = model
        self.split = split
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.sampler = NegativeSampler(
            split.num_items, num_negatives=config.num_negatives,
            rng=np.random.default_rng(config.seed + 1),
        )
        all_users = self._all_user_ids()
        self.states: Dict[int, UserState] = model.init_all_users(all_users)
        #: wall-clock seconds per training call, keyed by span (0 = pretrain)
        self.train_times: Dict[int, float] = {}
        #: wall-clock seconds per snapshot re-extraction, same keying —
        #: the "extract" half of the span that train_times never covered
        self.extract_times: Dict[int, float] = {}
        #: span the strategy is currently working on (timing attribution;
        #: set by pretrain/train_span and by the experiment runner)
        self._current_span = 0
        #: lifetime optimizer-step counter (fault-injection probe index)
        self._fault_step = 0

    # ------------------------------------------------------------------ #
    def _all_user_ids(self) -> List[int]:
        users = set(self.split.pretrain.users)
        for span in self.split.spans:
            users.update(span.users)
        return sorted(users)

    # ------------------------------------------------------------------ #
    # public protocol
    # ------------------------------------------------------------------ #
    def set_current_span(self, span: int) -> None:
        """Attribute subsequent timing/telemetry to ``span`` (0 = pretrain)."""
        self._current_span = int(span)

    def pretrain(self) -> float:
        """Train the base model on the pre-training window."""
        self.set_current_span(0)
        payloads = build_payloads(self.split.pretrain, self.config)
        start = time.perf_counter()
        self._train(payloads, epochs=self.config.epochs_pretrain)
        elapsed = time.perf_counter() - start
        self._refresh_snapshots(self.split.pretrain)
        self.train_times[0] = elapsed
        return elapsed

    def train_span(self, t: int) -> float:
        """Update the model with span ``t`` (1-based).  Returns seconds."""
        raise NotImplementedError

    def score_user(self, user: int) -> np.ndarray:
        """Catalog scores for evaluation (max over stored interests)."""
        return self.model.score_all_items(self.states[user])

    def score_users(self, users: Sequence[int],
                    exact: bool = True) -> np.ndarray:
        """Catalog scores for many users at once — the evaluator's batched
        fast path.  The default (``exact=True``) is bit-identical to
        stacking :meth:`score_user` calls: it issues the same per-user
        GEMM through :func:`repro.models.score_items_batch`.
        ``exact=False`` scores all users in one stacked GEMM —
        float-tolerance, maximum throughput (see the perf probe).
        Strategies that override :meth:`score_user` (MIMN, LimaRec) are
        detected and scored through their own override."""
        if type(self).score_user is not IncrementalStrategy.score_user:
            return np.stack([self.score_user(u) for u in users])
        from ..models.aggregator import score_items_batch

        return score_items_batch(
            [self.states[u].interests for u in users],
            self.model.item_emb.weight.data,
            exact=exact,
        )

    def interest_counts(self) -> Dict[int, int]:
        return {u: s.num_interests for u, s in self.states.items()}

    def random_generators(self) -> Dict[str, np.random.Generator]:
        """Every RNG whose stream must survive a checkpoint/restore for
        a resumed run to be bit-identical to an uninterrupted one.
        Strategies with extra generators extend this mapping."""
        return {
            "strategy": self.rng,
            "sampler": self.sampler.rng,
            "model": self.model.rng,
        }

    def extra_state(self) -> Dict[str, np.ndarray]:
        """Strategy-specific arrays beyond the base state (model
        parameters, user states, RNG streams) that must survive a
        checkpoint for a resumed run to execute the same algorithm —
        replay pools, Fisher estimates, diagnostic logs.  Stored under
        ``extra/`` in the archive and checksummed like every other
        array.  Strategies carrying such state override this *together
        with* :meth:`load_extra_state`; the base strategy has none."""
        return {}

    def load_extra_state(self, arrays: Dict[str, np.ndarray]) -> None:
        """Restore the mapping produced by :meth:`extra_state`.

        Overrides must ``pop`` the keys they own, delegate the remainder
        to ``super()``, and only then mutate ``self`` — so an unexpected
        key fails the load before any state changes.  The base strategy
        owns no extra state, so any leftover key is a checkpoint /
        strategy mismatch."""
        if arrays:
            raise ValueError(
                f"checkpoint carries extra strategy state "
                f"{sorted(arrays)[:5]} that {type(self).__name__} does "
                f"not know how to restore")

    # ------------------------------------------------------------------ #
    # shared training machinery
    # ------------------------------------------------------------------ #
    def _optimizer(self, payloads: Sequence[UserPayload]) -> Adam:
        params = list(self.model.parameters())
        involved = [self.states[p.user] for p in payloads]
        params.extend(self.model.user_parameters(involved))
        if getattr(self.config, "sparse_adam", False):
            from ..nn import SparseAdam

            return SparseAdam(params, lr=self.config.lr)
        return Adam(params, lr=self.config.lr)

    def _train(
        self,
        payloads: Sequence[UserPayload],
        epochs: int,
        loss_hook: Optional[Callable[[UserState, Tensor, UserPayload], Optional[Tensor]]] = None,
        epoch_hook: Optional[Callable[[int, UserPayload], None]] = None,
        interests_hook: Optional[Callable[[UserState, Tensor], Tensor]] = None,
        optimizer: Optional[Adam] = None,
        val_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        """The core loop: per user, extract interests once and score all
        the user's targets (paper Section IV-E).

        ``loss_hook(state, interests, payload)`` may return an extra loss
        term (e.g. EIR's distillation).  ``epoch_hook(epoch, payload)``
        runs before each user's step (IMSR's IntsEx).  ``interests_hook``
        post-processes the extracted interests in-graph (PIT projection).
        ``val_fn`` (or the config's ``early_stopping`` default, which
        scores the payloads' validation split) enables early stopping.

        ``config.users_per_batch > 1`` switches to the micro-batched
        engine: groups of users are padded into one batched forward and
        one optimizer step per group (:mod:`repro.models.batched_train`).
        The default of 1 runs this exact loop, bit-identical to the
        historical behavior.
        """
        if not payloads:
            return
        opt = optimizer or self._optimizer(payloads)
        group_size = max(1, int(getattr(self.config, "users_per_batch", 1)))
        from ..models.batched_train import supports_batched_training

        use_groups = group_size > 1 and supports_batched_training(self.model)
        order = list(payloads)
        best_val = -np.inf
        stale_epochs = 0
        for epoch in range(epochs):
            self.rng.shuffle(order)
            with obs.span("epoch", epoch=epoch, span_id=self._current_span,
                          users=len(order)):
                if use_groups:
                    for start in range(0, len(order), group_size):
                        group = order[start:start + group_size]
                        with obs.span("user_batch", size=len(group)):
                            self._train_group(group, epoch, opt, loss_hook,
                                              epoch_hook, interests_hook)
                else:
                    for payload in order:
                        self._train_user(payload, epoch, opt, loss_hook,
                                         epoch_hook, interests_hook)
            if val_fn is not None or self.config.early_stopping:
                score = val_fn() if val_fn is not None else (
                    self._payload_val_score(payloads))
                if score > best_val + 1e-9:
                    best_val = score
                    stale_epochs = 0
                else:
                    stale_epochs += 1
                    if stale_epochs >= self.config.patience:
                        break

    def _train_user(
        self,
        payload: UserPayload,
        epoch: int,
        opt: Adam,
        loss_hook=None,
        epoch_hook=None,
        interests_hook=None,
    ) -> None:
        """One user's training step — the paper-exact per-user path."""
        state = self.states[payload.user]
        if epoch_hook is not None:
            epoch_hook(epoch, payload)
            opt = self._sync_optimizer(opt, state)
        interests = self.model.compute_interests(state, payload.history)
        if interests_hook is not None:
            interests = interests_hook(state, interests)
        negatives = np.stack(
            [self.sampler.sample(t) for t in payload.targets]
        )
        loss = self.model.loss_targets(interests, payload.targets, negatives)
        if loss_hook is not None:
            extra = loss_hook(state, interests, payload)
            if extra is not None:
                loss = loss + extra
        mods = _fault_probe("train-step", step=self._fault_step,
                            user=payload.user)
        self._fault_step += 1
        if mods.get("poison_nan"):
            loss = loss * Tensor(float("nan"), requires_grad=False)
        if not np.isfinite(loss.data).all():
            # failure containment: a non-finite loss (degenerate
            # negatives, exploded logits) must not poison the
            # parameters — skip this user's step
            obs.counter("train.nonfinite_skips")
            return
        if obs.enabled():
            obs.counter("train.steps")
            obs.observe("train.loss", float(loss.data))
        opt.zero_grad()
        loss.backward()
        clip_grad_norm(opt.params, self.config.grad_clip)
        opt.step()
        self.model.item_emb.zero_padding_row()
        state.interests = _capture(interests.data.copy())

    def _train_group(
        self,
        group: Sequence[UserPayload],
        epoch: int,
        opt: Adam,
        loss_hook=None,
        epoch_hook=None,
        interests_hook=None,
    ) -> None:
        """One micro-batch: a batched forward over ``group`` and a single
        optimizer step whose gradient is the accumulated per-user
        gradient (sum of each user's mean-over-targets loss).

        Per-user hooks keep their exact per-user semantics by operating
        on in-graph slices of the padded interest block: epoch hooks
        (NID expansion / PIT trimming) run for the whole group *before*
        extraction so the capsule layout is fixed, ``interests_hook``
        rewrites each user's slice (the slices are re-padded for the
        loss), and ``loss_hook`` contributes per-user extra terms.  One
        fault probe fires per optimizer step, and a non-finite group
        loss skips the whole group's step (same containment rule as the
        per-user path, at group granularity).
        """
        from ..models.batched_train import (
            batched_compute_interests,
            batched_loss_targets,
            pad_interest_group,
        )

        for payload in group:
            if epoch_hook is not None:
                epoch_hook(epoch, payload)
                opt = self._sync_optimizer(opt, self.states[payload.user])
        # hooks may have expanded/trimmed states — re-read them now
        jobs = [(self.states[p.user], p.history) for p in group]
        interests, capsule_mask, ks = batched_compute_interests(self.model, jobs)
        per_user: Optional[List[Tensor]] = None
        if interests_hook is not None or loss_hook is not None:
            per_user = [interests[b, :ks[b]] for b in range(len(group))]
        if interests_hook is not None:
            per_user = [interests_hook(state, t)
                        for (state, _), t in zip(jobs, per_user)]
            interests, capsule_mask = pad_interest_group(per_user, self.model.dim)
        negatives = [self.sampler.sample_batch(p.targets) for p in group]
        loss = batched_loss_targets(
            self.model, interests, capsule_mask,
            [p.targets for p in group], negatives,
        )
        if loss_hook is not None:
            for (state, _), t, payload in zip(jobs, per_user, group):
                extra = loss_hook(state, t, payload)
                if extra is not None:
                    loss = loss + extra
        mods = _fault_probe("train-step", step=self._fault_step,
                            user=group[0].user)
        self._fault_step += 1
        if mods.get("poison_nan"):
            loss = loss * Tensor(float("nan"), requires_grad=False)
        if not np.isfinite(loss.data).all():
            obs.counter("train.nonfinite_skips")
            return
        if obs.enabled():
            obs.counter("train.steps")
            obs.observe("train.loss", float(loss.data))
            obs.observe("batched.group_size", len(group))
        opt.zero_grad()
        loss.backward()
        clip_grad_norm(opt.params, self.config.grad_clip)
        opt.step()
        self.model.item_emb.zero_padding_row()
        for b, (state, _) in enumerate(jobs):
            source = per_user[b].data if per_user is not None else (
                interests.data[b, :ks[b]])
            state.interests = _capture(source.copy())

    def _payload_val_score(self, payloads: Sequence[UserPayload]) -> float:
        """Mean HR@20 of each payload's last target against the catalog —
        the cheap validation signal used for early stopping."""
        from ..eval.metrics import metrics_from_ranks, ranks_of_targets

        if not payloads:
            return 0.0
        emb = self.model.item_emb.weight.data
        hits = np.empty(len(payloads))
        for i, payload in enumerate(payloads):
            scores = (emb @ self.states[payload.user].interests.T).max(axis=1)
            ranks = ranks_of_targets(scores, [payload.targets[-1]])
            hits[i] = metrics_from_ranks(ranks)[0][0]
        return float(np.mean(hits))

    def _sync_optimizer(self, opt: Adam, state: UserState) -> Adam:
        """Ensure a user's (possibly re-created) SA weights are optimized.

        Membership must be an explicit *identity* test.  The previous
        ``sa_weights not in opt.params`` only worked because ``Tensor``
        happens not to define ``__eq__`` — an elementwise ``__eq__``
        (the numpy/torch convention) would make ``in`` raise or, worse,
        silently match a *different* user's equal-valued weights — and
        it scanned the whole parameter list per call.
        ``Optimizer.has_param`` keeps an ``id()`` set for exactly this
        check (regression-tested in ``tests/test_sparse_adam.py``)."""
        if state.sa_weights is not None and not opt.has_param(state.sa_weights):
            opt.add_param(state.sa_weights)
        return opt

    def _refresh_snapshots(self, span: SpanDataset,
                           interests_hook: Optional[Callable] = None) -> None:
        """Re-extract and store interests from each user's span items.

        With ``config.batched_snapshots`` (opt-in; float-tolerance, not
        bitwise), the whole span refreshes through one batched no-grad
        extraction instead of a Python loop of per-user extractions.

        Wall-clock lands in ``extract_times[current span]`` — the
        "extract" phase of a span that ``train_times`` never covered."""
        start = time.perf_counter()
        with obs.span("snapshot_refresh", span_id=self._current_span,
                      users=len(span.user_ids())), _prof.phase("extract"):
            self._refresh_snapshots_impl(span, interests_hook)
        self.extract_times[self._current_span] = (
            self.extract_times.get(self._current_span, 0.0)
            + (time.perf_counter() - start))

    def _refresh_snapshots_impl(self, span: SpanDataset,
                                interests_hook: Optional[Callable]) -> None:
        if getattr(self.config, "batched_snapshots", False):
            from ..models.batched_train import (
                batched_snapshot_interests,
                supports_batched_training,
            )

            if supports_batched_training(self.model):
                jobs = [(self.states[user], span.users[user].all_items)
                        for user in span.user_ids()]
                batched_snapshot_interests(self.model, jobs,
                                           interests_hook=interests_hook)
                return
        for user in span.user_ids():
            items = span.users[user].all_items
            if not items:
                continue
            state = self.states[user]
            # snapshots are detached reads — skip graph construction
            with no_grad():
                interests = self.model.compute_interests(state, items)
                if interests_hook is not None:
                    interests = interests_hook(state, interests)
            state.interests = _capture(interests.data.copy())
