"""Base class and shared training loop for incremental learning strategies.

Every strategy (FR, FT, SML, ADER, IMSR, and the ablation variants) shares
the same skeleton, mirroring the paper's protocol:

1. ``pretrain()`` on the ``[0, alpha*Z]`` window;
2. for each incremental span ``t``: ``train_span(t)`` using (at least) the
   span's new interactions;
3. after each span, user interest snapshots are refreshed and the model is
   evaluated on span ``t+1``'s test items (handled by the experiment
   runner via :meth:`score_user`).

The paper trains each user by splitting their in-span interactions into a
historical part (interests are extracted from it) and a target-item set
(all scored against those interests) — see Section IV-E.  That split is
what :class:`UserPayload` captures.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..autograd import Tensor, no_grad
from ..data.sampler import NegativeSampler
from ..data.schema import SpanDataset, TemporalSplit
from ..faults import fire as _fault_probe
from ..models.base import MSRModel, UserState
from ..nn import Adam, clip_grad_norm


@dataclass
class TrainConfig:
    """Hyperparameters shared by all strategies."""

    epochs_pretrain: int = 12
    epochs_incremental: int = 4
    lr: float = 0.02
    num_negatives: int = 10
    #: fraction of a user's in-span items used as extraction history;
    #: the remainder become the target set (paper Section IV-E)
    history_fraction: float = 0.5
    grad_clip: float = 5.0
    seed: int = 0
    #: cap on per-user targets per span (keeps epochs bounded)
    max_targets: int = 24
    #: stop an epoch loop early when validation HR@20 stops improving
    #: (the paper performs early stopping during training)
    early_stopping: bool = False
    patience: int = 2


@dataclass
class UserPayload:
    """One user's training material for one span."""

    user: int
    history: List[int]
    targets: List[int]


def build_payloads(span: SpanDataset, config: TrainConfig,
                   include_val: bool = True) -> List[UserPayload]:
    """Split each user's in-span items into history + target set."""
    payloads: List[UserPayload] = []
    for user in span.user_ids():
        data = span.users[user]
        items = list(data.train_items)
        if include_val and data.val_item is not None:
            items.append(data.val_item)
        if len(items) < 2:
            continue
        cut = max(1, int(round(len(items) * config.history_fraction)))
        cut = min(cut, len(items) - 1)
        targets = items[cut:]
        if len(targets) > config.max_targets:
            targets = targets[-config.max_targets:]
        payloads.append(UserPayload(user=user, history=items[:cut], targets=targets))
    return payloads


def merge_payload_items(*payload_lists: Sequence[UserPayload]) -> Dict[int, List[int]]:
    """Per-user concatenation of history+targets across payload lists."""
    merged: Dict[int, List[int]] = {}
    for payloads in payload_lists:
        for p in payloads:
            merged.setdefault(p.user, []).extend(p.history + p.targets)
    return merged


def encode_json_state(payload) -> np.ndarray:
    """JSON-serializable object -> uint8 array, for checkpoint storage."""
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return np.frombuffer(blob, dtype=np.uint8)


def decode_json_state(arr: np.ndarray):
    """Inverse of :func:`encode_json_state`."""
    return json.loads(np.ascontiguousarray(arr, dtype=np.uint8)
                      .tobytes().decode("utf-8"))


class IncrementalStrategy:
    """Skeleton for the compared learning strategies."""

    name = "base"

    def __init__(self, model: MSRModel, split: TemporalSplit, config: TrainConfig):
        self.model = model
        self.split = split
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.sampler = NegativeSampler(
            split.num_items, num_negatives=config.num_negatives,
            rng=np.random.default_rng(config.seed + 1),
        )
        all_users = self._all_user_ids()
        self.states: Dict[int, UserState] = model.init_all_users(all_users)
        #: wall-clock seconds per training call, keyed by span (0 = pretrain)
        self.train_times: Dict[int, float] = {}
        #: lifetime optimizer-step counter (fault-injection probe index)
        self._fault_step = 0

    # ------------------------------------------------------------------ #
    def _all_user_ids(self) -> List[int]:
        users = set(self.split.pretrain.users)
        for span in self.split.spans:
            users.update(span.users)
        return sorted(users)

    # ------------------------------------------------------------------ #
    # public protocol
    # ------------------------------------------------------------------ #
    def pretrain(self) -> float:
        """Train the base model on the pre-training window."""
        payloads = build_payloads(self.split.pretrain, self.config)
        start = time.perf_counter()
        self._train(payloads, epochs=self.config.epochs_pretrain)
        elapsed = time.perf_counter() - start
        self._refresh_snapshots(self.split.pretrain)
        self.train_times[0] = elapsed
        return elapsed

    def train_span(self, t: int) -> float:
        """Update the model with span ``t`` (1-based).  Returns seconds."""
        raise NotImplementedError

    def score_user(self, user: int) -> np.ndarray:
        """Catalog scores for evaluation (max over stored interests)."""
        return self.model.score_all_items(self.states[user])

    def interest_counts(self) -> Dict[int, int]:
        return {u: s.num_interests for u, s in self.states.items()}

    def random_generators(self) -> Dict[str, np.random.Generator]:
        """Every RNG whose stream must survive a checkpoint/restore for
        a resumed run to be bit-identical to an uninterrupted one.
        Strategies with extra generators extend this mapping."""
        return {
            "strategy": self.rng,
            "sampler": self.sampler.rng,
            "model": self.model.rng,
        }

    def extra_state(self) -> Dict[str, np.ndarray]:
        """Strategy-specific arrays beyond the base state (model
        parameters, user states, RNG streams) that must survive a
        checkpoint for a resumed run to execute the same algorithm —
        replay pools, Fisher estimates, diagnostic logs.  Stored under
        ``extra/`` in the archive and checksummed like every other
        array.  Strategies carrying such state override this *together
        with* :meth:`load_extra_state`; the base strategy has none."""
        return {}

    def load_extra_state(self, arrays: Dict[str, np.ndarray]) -> None:
        """Restore the mapping produced by :meth:`extra_state`.

        Overrides must ``pop`` the keys they own, delegate the remainder
        to ``super()``, and only then mutate ``self`` — so an unexpected
        key fails the load before any state changes.  The base strategy
        owns no extra state, so any leftover key is a checkpoint /
        strategy mismatch."""
        if arrays:
            raise ValueError(
                f"checkpoint carries extra strategy state "
                f"{sorted(arrays)[:5]} that {type(self).__name__} does "
                f"not know how to restore")

    # ------------------------------------------------------------------ #
    # shared training machinery
    # ------------------------------------------------------------------ #
    def _optimizer(self, payloads: Sequence[UserPayload]) -> Adam:
        params = list(self.model.parameters())
        involved = [self.states[p.user] for p in payloads]
        params.extend(self.model.user_parameters(involved))
        return Adam(params, lr=self.config.lr)

    def _train(
        self,
        payloads: Sequence[UserPayload],
        epochs: int,
        loss_hook: Optional[Callable[[UserState, Tensor, UserPayload], Optional[Tensor]]] = None,
        epoch_hook: Optional[Callable[[int, UserPayload], None]] = None,
        interests_hook: Optional[Callable[[UserState, Tensor], Tensor]] = None,
        optimizer: Optional[Adam] = None,
        val_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        """The core loop: per user, extract interests once and score all
        the user's targets (paper Section IV-E).

        ``loss_hook(state, interests, payload)`` may return an extra loss
        term (e.g. EIR's distillation).  ``epoch_hook(epoch, payload)``
        runs before each user's step (IMSR's IntsEx).  ``interests_hook``
        post-processes the extracted interests in-graph (PIT projection).
        ``val_fn`` (or the config's ``early_stopping`` default, which
        scores the payloads' validation split) enables early stopping.
        """
        if not payloads:
            return
        opt = optimizer or self._optimizer(payloads)
        order = list(payloads)
        best_val = -np.inf
        stale_epochs = 0
        for epoch in range(epochs):
            self.rng.shuffle(order)
            for payload in order:
                state = self.states[payload.user]
                if epoch_hook is not None:
                    epoch_hook(epoch, payload)
                    opt = self._sync_optimizer(opt, state)
                interests = self.model.compute_interests(state, payload.history)
                if interests_hook is not None:
                    interests = interests_hook(state, interests)
                negatives = np.stack(
                    [self.sampler.sample(t) for t in payload.targets]
                )
                loss = self.model.loss_targets(interests, payload.targets, negatives)
                if loss_hook is not None:
                    extra = loss_hook(state, interests, payload)
                    if extra is not None:
                        loss = loss + extra
                mods = _fault_probe("train-step", step=self._fault_step,
                                    user=payload.user)
                self._fault_step += 1
                if mods.get("poison_nan"):
                    loss = loss * Tensor(float("nan"), requires_grad=False)
                if not np.isfinite(loss.data).all():
                    # failure containment: a non-finite loss (degenerate
                    # negatives, exploded logits) must not poison the
                    # parameters — skip this user's step
                    continue
                opt.zero_grad()
                loss.backward()
                clip_grad_norm(opt.params, self.config.grad_clip)
                opt.step()
                self.model.item_emb.zero_padding_row()
                state.interests = interests.data.copy()
            if val_fn is not None or self.config.early_stopping:
                score = val_fn() if val_fn is not None else (
                    self._payload_val_score(payloads))
                if score > best_val + 1e-9:
                    best_val = score
                    stale_epochs = 0
                else:
                    stale_epochs += 1
                    if stale_epochs >= self.config.patience:
                        break

    def _payload_val_score(self, payloads: Sequence[UserPayload]) -> float:
        """Mean HR@20 of each payload's last target against the catalog —
        the cheap validation signal used for early stopping."""
        from ..eval.metrics import hit_at_k, rank_of_target

        hits = []
        emb = self.model.item_emb.weight.data
        for payload in payloads:
            state = self.states[payload.user]
            scores = (emb @ state.interests.T).max(axis=1)
            rank = rank_of_target(scores, payload.targets[-1])
            hits.append(hit_at_k(rank))
        return float(np.mean(hits)) if hits else 0.0

    def _sync_optimizer(self, opt: Adam, state: UserState) -> Adam:
        """Ensure a user's (possibly re-created) SA weights are optimized."""
        if state.sa_weights is not None and state.sa_weights not in opt.params:
            opt.add_param(state.sa_weights)
        return opt

    def _refresh_snapshots(self, span: SpanDataset,
                           interests_hook: Optional[Callable] = None) -> None:
        """Re-extract and store interests from each user's span items."""
        for user in span.user_ids():
            items = span.users[user].all_items
            if not items:
                continue
            state = self.states[user]
            # snapshots are detached reads — skip graph construction
            with no_grad():
                interests = self.model.compute_interests(state, items)
                if interests_hook is not None:
                    interests = interests_hook(state, interests)
            state.interests = interests.data.copy()
