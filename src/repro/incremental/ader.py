"""ADER (Mi et al., RecSys 2020) — adaptively distilled exemplar replay.

ADER maintains a pool of historical sequences; in each span it selects
exemplars similar to the new sessions, replays them alongside the new
data, and distills the previous model's outputs on the exemplars so old
knowledge is preserved.  Following the paper's setup we keep up to
``pool_per_user`` randomly truncated sequences per user per span and add
a sigmoid distillation term (same form as Eq. 10) on replayed users.

Its training time grows across spans because the pool keeps growing
(Table V) — we deliberately do not cap the global pool.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from ..autograd import Tensor
from ..models.base import MSRModel, UserState
from ..sanitize import capture as _capture
from .imsr.eir import sigmoid_distillation_loss
from .strategy import (
    IncrementalStrategy,
    TrainConfig,
    UserPayload,
    build_payloads,
    decode_json_state,
    encode_json_state,
)


def encode_pool(pool: Dict[int, List[List[int]]]) -> np.ndarray:
    """Serialize a replay pool (user -> truncated sequences) to a
    checkpointable uint8 array."""
    return encode_json_state(
        {str(u): [[int(i) for i in seq] for seq in bucket]
         for u, bucket in pool.items()})


def decode_pool(arr: np.ndarray) -> Dict[int, List[List[int]]]:
    """Inverse of :func:`encode_pool`."""
    return {int(u): [[int(i) for i in seq] for seq in bucket]
            for u, bucket in decode_json_state(arr).items()}


class ADER(IncrementalStrategy):
    """Exemplar replay with distillation on the replayed sequences."""

    name = "ADER"

    def __init__(self, model: MSRModel, split, config: TrainConfig,
                 pool_per_user: int = 5, kd_weight: float = 1e-3,
                 temperature: float = 1.0, max_replay: int = 6):
        super().__init__(model, split, config)
        self.pool_per_user = pool_per_user
        self.kd_weight = kd_weight
        self.temperature = temperature
        #: cap on replayed sequences per user per span; the effective
        #: count grows with the pool's generations, which is what makes
        #: ADER's per-span cost grow across spans (Table V)
        self.max_replay = max_replay
        #: user -> list of truncated historical sequences (the session pool)
        self.pool: Dict[int, List[List[int]]] = {}
        self._pool_rng = np.random.default_rng(config.seed + 17)

    # ------------------------------------------------------------------ #
    def random_generators(self):
        gens = super().random_generators()
        gens["pool"] = self._pool_rng
        return gens

    def extra_state(self):
        state = super().extra_state()
        state["pool"] = _capture(encode_pool(self.pool))
        return state

    def load_extra_state(self, arrays):
        arrays = dict(arrays)
        pool = arrays.pop("pool", None)
        if pool is None:  # pre-extra-state (v1) checkpoint
            raise ValueError(
                "checkpoint has no replay pool for ADER; resuming from it "
                "would train a different algorithm")
        super().load_extra_state(arrays)
        self.pool = decode_pool(pool)

    # ------------------------------------------------------------------ #
    def pretrain(self) -> float:
        elapsed = super().pretrain()
        self._add_to_pool(self.split.pretrain)
        return elapsed

    def _add_to_pool(self, span) -> None:
        """Store ``pool_per_user`` randomly truncated sequences per user."""
        for user in span.user_ids():
            items = span.users[user].all_items
            if len(items) < 3:
                continue
            bucket = self.pool.setdefault(user, [])
            for _ in range(self.pool_per_user):
                cut = int(self._pool_rng.integers(2, len(items)))
                start = int(self._pool_rng.integers(0, len(items) - cut + 1))
                bucket.append(items[start:start + cut])

    def _exemplar_payloads(self, span) -> List[UserPayload]:
        """Replayed sequences per pooled user.

        Users active in the span get the pool sequences most similar to
        their new session (cosine similarity of mean item embeddings);
        users *without* new interactions still get replayed sequences —
        that is what keeps their interests alive.  The replay count per
        user grows with the pool's generations (capped at ``max_replay``),
        which is why ADER's per-span training cost grows across spans
        (Table V).
        """
        emb = self.model.item_emb.weight.data
        payloads: List[UserPayload] = []
        for user, bucket in sorted(self.pool.items()):
            if not bucket:
                continue
            generations = max(1, len(bucket) // self.pool_per_user)
            n_replay = min(generations, self.max_replay, len(bucket))
            if user in span and span.users[user].all_items:
                new_items = span.users[user].all_items
                query = emb[new_items].mean(axis=0)
                qn = np.linalg.norm(query) + 1e-12
                sims = []
                for seq in bucket:
                    vec = emb[seq].mean(axis=0)
                    sims.append(float(
                        query @ vec / (qn * (np.linalg.norm(vec) + 1e-12))))
                order = np.argsort(sims)[::-1][:n_replay]
                chosen = [bucket[i] for i in order]
            else:
                picks = self._pool_rng.choice(len(bucket), size=n_replay,
                                              replace=False)
                chosen = [bucket[int(i)] for i in picks]
            for seq in chosen:
                if len(seq) >= 2:
                    cut = max(1, len(seq) // 2)
                    payloads.append(UserPayload(
                        user=user, history=seq[:cut], targets=seq[cut:]))
        return payloads

    # ------------------------------------------------------------------ #
    def train_span(self, t: int) -> float:
        span = self.split.spans[t - 1]
        for user in span.user_ids():
            self.states[user].begin_span()
        new_payloads = build_payloads(span, self.config)
        exemplars = self._exemplar_payloads(span)
        exemplar_users = {p.user for p in exemplars}

        def distill(state: UserState, interests: Tensor,
                    payload: UserPayload) -> Optional[Tensor]:
            if payload.user not in exemplar_users or self.kd_weight <= 0:
                return None
            target_embs = self.model.embed_items(payload.targets)
            kd = sigmoid_distillation_loss(
                interests, state.prev_interests, target_embs,
                temperature=self.temperature,
            )
            return kd * self.kd_weight

        start = time.perf_counter()
        self._train(list(new_payloads) + list(exemplars),
                    epochs=self.config.epochs_incremental,
                    loss_hook=distill)
        elapsed = time.perf_counter() - start

        self._refresh_snapshots(span)
        self._add_to_pool(span)
        self.train_times[t] = elapsed
        return elapsed
