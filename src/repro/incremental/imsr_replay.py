"""IMSR + exemplar replay — an extension beyond the paper.

The paper compares IMSR against sample-based replay (ADER) as
alternatives; nothing prevents combining them.  This strategy runs the
full IMSR framework (EIR + NID + PIT) while additionally replaying
ADER-style truncated historical sequences, answering the natural
follow-up question: *does replay add anything once retention and
expansion are in place?*  The extension benchmark reports the result.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from ..models.base import MSRModel
from ..sanitize import capture as _capture
from .ader import decode_pool, encode_pool
from .imsr.framework import IMSR
from .strategy import TrainConfig, UserPayload, build_payloads


class IMSRReplay(IMSR):
    """IMSR with an auxiliary exemplar-replay stream."""

    name = "IMSR+Replay"

    def __init__(self, model: MSRModel, split, config: TrainConfig,
                 pool_per_user: int = 3, replay_per_span: int = 1, **imsr_kwargs):
        super().__init__(model, split, config, **imsr_kwargs)
        self.pool_per_user = pool_per_user
        self.replay_per_span = replay_per_span
        self.pool: Dict[int, List[List[int]]] = {}
        self._pool_rng = np.random.default_rng(config.seed + 47)

    # ------------------------------------------------------------------ #
    def random_generators(self):
        gens = super().random_generators()
        gens["pool"] = self._pool_rng
        return gens

    def extra_state(self):
        state = super().extra_state()
        state["pool"] = _capture(encode_pool(self.pool))
        return state

    def load_extra_state(self, arrays):
        arrays = dict(arrays)
        pool = arrays.pop("pool", None)
        if pool is None:  # pre-extra-state (v1) checkpoint
            raise ValueError(
                "checkpoint has no replay pool for IMSR+Replay; resuming "
                "from it would train a different algorithm")
        super().load_extra_state(arrays)
        self.pool = decode_pool(pool)

    # ------------------------------------------------------------------ #
    def _add_to_pool(self, span) -> None:
        for user in span.user_ids():
            items = span.users[user].all_items
            if len(items) < 3:
                continue
            bucket = self.pool.setdefault(user, [])
            for _ in range(self.pool_per_user):
                cut = int(self._pool_rng.integers(2, len(items)))
                start = int(self._pool_rng.integers(0, len(items) - cut + 1))
                bucket.append(items[start:start + cut])

    def _replay_payloads(self) -> List[UserPayload]:
        payloads: List[UserPayload] = []
        for user, bucket in sorted(self.pool.items()):
            if not bucket:
                continue
            picks = self._pool_rng.choice(
                len(bucket),
                size=min(self.replay_per_span, len(bucket)),
                replace=False,
            )
            for i in picks:
                seq = bucket[int(i)]
                if len(seq) >= 2:
                    cut = max(1, len(seq) // 2)
                    payloads.append(UserPayload(
                        user=user, history=seq[:cut], targets=seq[cut:]))
        return payloads

    # ------------------------------------------------------------------ #
    def pretrain(self) -> float:
        elapsed = super().pretrain()
        self._add_to_pool(self.split.pretrain)
        return elapsed

    def train_span(self, t: int) -> float:
        span = self.split.spans[t - 1]
        for user in span.user_ids():
            self.states[user].begin_span()
        payloads = list(build_payloads(span, self.config))
        payloads.extend(self._replay_payloads())

        def epoch_hook(epoch: int, payload: UserPayload) -> None:
            self._ints_ex(epoch, payload, span_idx=t)

        start = time.perf_counter()
        self._train(
            payloads,
            epochs=self.config.epochs_incremental,
            loss_hook=self._retention_loss,
            epoch_hook=epoch_hook,
            interests_hook=self._pit_hook,
        )
        elapsed = time.perf_counter() - start

        self._refresh_snapshots(span, interests_hook=self._pit_hook)
        self._add_to_pool(span)
        self.train_times[t] = elapsed
        return elapsed
