"""SML (Zhang et al., SIGIR 2020) — sequential meta-learning transfer.

SML trains the current model on the new span, then *learns how to combine*
the previous span's parameters with the freshly trained ones, using the
new data to supervise the combination.  The original uses a CNN over
stacked parameter matrices as the transfer module; with our from-scratch
substrate we implement the transfer as a per-parameter-tensor convex
interpolation ``W ← α·W_prev + (1−α)·W_new`` whose coefficient is
meta-selected on the span's validation items (grid search).  This
preserves SML's defining behavior — knowledge transfer that interpolates
between FT and stability, with per-span meta-supervision — at a fraction
of the machinery; see DESIGN.md for the substitution note.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from ..eval.metrics import metrics_at_k
from ..models.base import MSRModel
from .strategy import (
    IncrementalStrategy,
    TrainConfig,
    build_payloads,
    decode_json_state,
    encode_json_state,
)


class SML(IncrementalStrategy):
    """Meta-learned interpolation between previous and current parameters."""

    name = "SML"

    def __init__(self, model: MSRModel, split, config: TrainConfig,
                 alpha_grid: tuple = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)):
        super().__init__(model, split, config)
        self.alpha_grid = alpha_grid
        self.chosen_alphas: Dict[int, float] = {}

    def extra_state(self):
        state = super().extra_state()
        state["sml_alphas"] = encode_json_state(
            {str(t): float(a) for t, a in self.chosen_alphas.items()})
        return state

    def load_extra_state(self, arrays):
        arrays = dict(arrays)
        alphas = arrays.pop("sml_alphas", None)
        super().load_extra_state(arrays)
        if alphas is not None:  # absent from v1 checkpoints; diagnostics only
            self.chosen_alphas = {int(t): float(a)
                                  for t, a in decode_json_state(alphas).items()}

    def train_span(self, t: int) -> float:
        span = self.split.spans[t - 1]
        for user in span.user_ids():
            self.states[user].begin_span()
        prev_params = self.model.state_dict()
        payloads = build_payloads(span, self.config)

        start = time.perf_counter()
        self._train(payloads, epochs=self.config.epochs_incremental)
        new_params = self.model.state_dict()

        # --- transfer module: meta-select the combination coefficient.
        # Supervision spans both the current span's validation items and
        # the previous span's (knowledge transfer must serve old and new
        # interests alike), which is what distinguishes SML from plain FT.
        val_spans = [span]
        if t >= 2:
            val_spans.append(self.split.spans[t - 2])
        best_alpha, best_score = 0.0, -1.0
        for alpha in self.alpha_grid:
            self._load_interpolated(prev_params, new_params, alpha)
            score = float(np.mean([self._validation_score(s) for s in val_spans]))
            if score > best_score:
                best_alpha, best_score = alpha, score
        self._load_interpolated(prev_params, new_params, best_alpha)
        elapsed = time.perf_counter() - start

        self.chosen_alphas[t] = best_alpha
        self._refresh_snapshots(span)
        self.train_times[t] = elapsed
        return elapsed

    # ------------------------------------------------------------------ #
    def _load_interpolated(self, prev: Dict[str, np.ndarray],
                           new: Dict[str, np.ndarray], alpha: float) -> None:
        combined = {
            name: alpha * prev[name] + (1.0 - alpha) * new[name]
            for name in new
            if name in prev and prev[name].shape == new[name].shape
        }
        self.model.load_state_dict(combined, strict=False)

    def _validation_score(self, span) -> float:
        """Mean HR@20 on the span's validation items under current params."""
        hits: List[float] = []
        for user in span.user_ids():
            data = span.users[user]
            if data.val_item is None or not data.train_items:
                continue
            state = self.states[user]
            interests = self.model.compute_interests(state, data.train_items)
            scores = (
                self.model.item_emb.weight.data @ interests.data.T
            ).max(axis=1)
            hit, _ = metrics_at_k(scores, data.val_item, k=20)
            hits.append(hit)
        return float(np.mean(hits)) if hits else 0.0
