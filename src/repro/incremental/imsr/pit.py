"""PIT — Projection-based Interests Trimmer (paper Section IV-D, Alg. 1).

After NID allocates ``δK`` fresh interest vectors, PIT keeps only what is
genuinely *new*:

1. **Projection** (Eq. 16): each new interest vector is projected onto the
   span of the existing interest vectors, and only the orthogonal residual
   is kept — a new vector lying in the existing interests' plane is just a
   recombination of old interests.  The paper's formula
   ``M Mᵀ (M Mᵀ)⁻¹`` is rank-deficient for K < d; we use the standard
   orthogonal projector ``P = M (MᵀM)⁻¹ Mᵀ`` (via pseudo-inverse), which
   is what the prose describes (see DESIGN.md).
2. **Trimming** (Eq. 17): new vectors whose L2 norm falls below ``c2``
   carry no real semantics (capsule norms encode interest existence) and
   are removed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ...autograd import Tensor, concat
from ...contracts import shape_contract


@shape_contract("(K, D) f -> (D, D) f")
def projection_matrix(existing: np.ndarray) -> np.ndarray:
    """Orthogonal projector onto the row-span of ``existing`` ((K, d)).

    Returns a (d, d) matrix ``P`` with ``P @ v`` the component of ``v``
    inside the existing interests' plane.
    """
    if existing.size == 0:
        return np.zeros((0, 0))
    # build from an orthonormal row basis (SVD) rather than the normal
    # equations M (M^T M)^+ M^T, which square the condition number and
    # lose idempotency on nearly-collinear interests
    _, s, vt = np.linalg.svd(existing, full_matrices=False)
    cutoff = np.finfo(s.dtype).eps * max(existing.shape) * (s[0] if s.size else 0.0)
    basis = vt[s > cutoff]  # (rank, d), orthonormal rows
    return basis.T @ basis


@shape_contract("(N, D) f, (K, D) f -> (N, D) f")
def orthogonal_residual(new: np.ndarray, existing: np.ndarray) -> np.ndarray:
    """Eq. 16 applied: the component of each new vector orthogonal to the
    existing interests' plane (numpy, no grad)."""
    if existing.size == 0:
        return new.copy()
    proj = projection_matrix(existing)
    return new - new @ proj.T


@shape_contract("(K, D) f, () -> (K, D) f")
def project_new_interests(interests: Tensor, n_existing: int) -> Tensor:
    """In-graph PIT projection of the rows ``[n_existing:]``.

    The projector is built from the *detached* existing rows, so gradients
    flow through the new interests' residuals but the basis is treated as
    a constant — matching Algorithm 1, where projection is an action on
    the extracted vectors rather than a learned map.
    """
    k_total = interests.shape[0]
    if n_existing <= 0 or n_existing >= k_total:
        return interests
    existing = interests[:n_existing]
    new = interests[n_existing:]
    proj = projection_matrix(existing.data)  # constant (d, d)
    residual = new - new @ Tensor(proj.T)
    return concat([existing, residual], axis=0)


@shape_contract("(K, D) f, (), (), (K) b -> (K) b")
def trim_mask(interests: np.ndarray, n_existing: int, c2: float,
              created_this_span: np.ndarray) -> np.ndarray:
    """Eq. 17: boolean keep-mask over interest rows.

    Only rows created in the current span may be trimmed; existing
    interests are always kept (they are EIR's responsibility).
    """
    k_total = interests.shape[0]
    keep = np.ones(k_total, dtype=bool)
    norms = np.linalg.norm(interests, axis=1)
    for idx in range(n_existing, k_total):
        if created_this_span[idx] and norms[idx] < c2:
            keep[idx] = False
    return keep


@shape_contract("(K, D) f, (), (N, D) f -> (KN, KO) f, (KN) f")
def redundancy_report(
    interests: np.ndarray,
    n_existing: int,
    item_embs: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Diagnostics behind the paper's Figure 3.

    For every (existing, new) interest pair, the Pearson correlation of
    their dot-product profiles over the user's items (high correlation =
    the new interest is redundant), plus the L2 norm of each new interest
    (low norm = the interest learned nothing).

    Returns ``(corr, norms)`` with ``corr`` of shape
    ``(K_new, K_existing)`` and ``norms`` of shape ``(K_new,)``.
    """
    profiles = item_embs @ interests.T  # (n, K)
    existing_profiles = profiles[:, :n_existing]
    new_profiles = profiles[:, n_existing:]
    k_new = new_profiles.shape[1]
    k_old = existing_profiles.shape[1]
    corr = np.zeros((k_new, k_old))
    for i in range(k_new):
        for j in range(k_old):
            a = new_profiles[:, i]
            b = existing_profiles[:, j]
            denom = a.std() * b.std()
            corr[i, j] = ((a - a.mean()) * (b - b.mean())).mean() / denom if denom > 1e-12 else 0.0
    norms = np.linalg.norm(interests[n_existing:], axis=1)
    return corr, norms
