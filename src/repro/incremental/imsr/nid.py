"""NID — New-Interests Detector (paper Section IV-C, Eqs. 11–14).

An item whose affinity is spread evenly across all current interests is
"puzzled": it cannot be classified into any existing interest.  The
posterior ``p(h_k | e_i) = softmax_k(e_i · h_k)`` (Eq. 11) is compared to
the uniform distribution via KL divergence (Eq. 12); the paper's
*puzzlement* (Eq. 13) is its negative,

    P_paper(i) = mean_k(e_i·h_k) − logsumexp_k(e_i·h_k) + ln K = −KL(u‖p),

which is ≤ 0 with maximum 0 at perfectly uniform affinity.  A positive
threshold ``c1`` (Eq. 14, paper sweeps 0.02–0.12) can never be exceeded by
a non-positive score, so we expose the monotone transform

    P(i) = exp(P_paper(i)) = exp(−KL) ∈ [0, 1]

as the implementation's puzzlement: 1 means maximally puzzled, → 0 means
one interest dominates (exactly 0 if the exponential underflows).  This keeps Eq. 14's comparison direction exactly
as described ("too large c1 prevents the creation of new interests") on a
bounded, interpretable scale; the Fig. 6 sweep values are rescaled
accordingly (see DESIGN.md / EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ...contracts import shape_contract


@shape_contract("(N, D) f, (K, D) f -> (N) f")
def kl_from_uniform(item_embs: np.ndarray, interests: np.ndarray) -> np.ndarray:
    """Eq. 12: per-item ``KL(uniform ‖ p(h|e_i))`` of the interest posterior."""
    if interests.shape[0] == 0:
        raise ValueError("need at least one interest vector")
    k = interests.shape[0]
    logits = item_embs @ interests.T  # (n, K)
    mean_logit = logits.mean(axis=1)
    max_logit = logits.max(axis=1)
    logsumexp = np.log(np.exp(logits - max_logit[:, None]).sum(axis=1)) + max_logit
    return logsumexp - mean_logit - np.log(k)


@shape_contract("(N, D) f, (K, D) f -> (N) f")
def puzzlement(item_embs: np.ndarray, interests: np.ndarray) -> np.ndarray:
    """Per-item puzzlement ``exp(Eq. 13) = exp(−KL)`` in [0, 1].

    Parameters
    ----------
    item_embs:
        (n, d) embeddings of the user's in-span items.
    interests:
        (K, d) the user's current interest vectors.
    """
    kl = np.maximum(kl_from_uniform(item_embs, interests), 0.0)
    return np.exp(-kl)


@shape_contract("(N, D) f, (K, D) f -> ()")
def mean_puzzlement(item_embs: np.ndarray, interests: np.ndarray) -> float:
    """Average puzzlement of a user's items (the quantity in Eq. 14)."""
    return float(puzzlement(item_embs, interests).mean())


@shape_contract("(N, D) f, (K, D) f, () -> () b")
def detect_new_interests(item_embs: np.ndarray, interests: np.ndarray,
                         c1: float) -> bool:
    """Eq. 14: should this user receive new interest capsules?"""
    return mean_puzzlement(item_embs, interests) > c1


def puzzled_users(
    user_item_embs: Dict[int, np.ndarray],
    user_interests: Dict[int, np.ndarray],
    c1: float,
) -> List[int]:
    """The puzzled set ``U_p^t``: users whose mean puzzlement exceeds c1."""
    return [
        user
        for user, embs in user_item_embs.items()
        if user in user_interests
        and detect_new_interests(embs, user_interests[user], c1)
    ]
