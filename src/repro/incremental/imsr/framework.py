"""The IMSR framework (paper Section IV, Algorithms 1–2).

Fine-tuning augmented with the three modules:

* **EIR** keeps existing interests' item-scoring behavior close to the
  previous span's (distillation loss added to Eq. 6's objective);
* **NID** watches the span's items and allocates ``δK`` fresh interest
  capsules for users whose items are *puzzled* by all current interests;
* **PIT** projects the fresh capsules onto the orthogonal complement of
  the existing interests and trims those whose norm stays trivial.

Ablation variants (Fig. 5) are expressed through the constructor flags:
``IMSR(..., use_nid=False, use_pit=False)`` is "IMSR w/o NID&PIT",
``kd_weight=0`` is "IMSR w/o EIR", and ``retainer=`` selects
DIR / KD1 / KD2 / KD3.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from ...autograd import Tensor
from ...models.base import MSRModel, UserState
from ...obs import trace as obs
from ...sanitize import capture as _capture
from ..strategy import (
    IncrementalStrategy,
    TrainConfig,
    UserPayload,
    build_payloads,
    decode_json_state,
    encode_json_state,
)
from .nid import mean_puzzlement
from .pit import project_new_interests, trim_mask
from .variants import get_retainer


class IMSR(IncrementalStrategy):
    """Incremental Multi-interest Sequential Recommendation (Algorithm 2)."""

    name = "IMSR"

    def __init__(
        self,
        model: MSRModel,
        split,
        config: TrainConfig,
        c1: float = 0.45,
        c2: float = 0.1,
        delta_k: int = 3,
        kd_weight: float = 0.1,
        temperature: float = 1.0,
        retainer: str = "EIR",
        use_nid: bool = True,
        use_pit: bool = True,
        max_interests: int = 24,
    ):
        super().__init__(model, split, config)
        self.c1 = c1
        self.c2 = c2
        self.delta_k = delta_k
        self.kd_weight = kd_weight
        self.temperature = temperature
        self.retainer = get_retainer(retainer)
        self.retainer_name = retainer
        self.use_nid = use_nid
        self.use_pit = use_pit
        self.max_interests = max_interests
        #: span -> list of users that NID expanded (diagnostics / Fig. 2)
        self.expansion_log: Dict[int, List[int]] = {}
        #: span -> users whose new interests were (partly) trimmed
        self.trim_log: Dict[int, Dict[int, int]] = {}

    # ------------------------------------------------------------------ #
    def extra_state(self):
        state = super().extra_state()
        state["imsr_logs"] = _capture(encode_json_state({
            "expansion": {str(t): [int(u) for u in users]
                          for t, users in self.expansion_log.items()},
            "trim": {str(t): {str(u): int(c) for u, c in per_user.items()}
                     for t, per_user in self.trim_log.items()},
        }))
        return state

    def load_extra_state(self, arrays):
        arrays = dict(arrays)
        logs = arrays.pop("imsr_logs", None)
        super().load_extra_state(arrays)
        if logs is not None:  # absent from v1 checkpoints; diagnostics only
            payload = decode_json_state(logs)
            self.expansion_log = {int(t): [int(u) for u in users]
                                  for t, users in payload["expansion"].items()}
            self.trim_log = {int(t): {int(u): int(c)
                                      for u, c in per_user.items()}
                             for t, per_user in payload["trim"].items()}

    # ------------------------------------------------------------------ #
    # Algorithm 1: interests expansion (per user, once per epoch)
    # ------------------------------------------------------------------ #
    def _ints_ex(self, epoch: int, payload: UserPayload, span_idx: int) -> None:
        state = self.states[payload.user]
        items = payload.history + payload.targets
        item_embs = self.model.item_emb.weight.data[items]

        # trim trivial new interests (Eq. 17) — only once they have had at
        # least one epoch of training behind them
        if self.use_pit and epoch > 0 and state.num_interests > state.n_existing:
            created_now = state.created_span == span_idx
            keep = trim_mask(state.interests, state.n_existing, self.c2, created_now)
            removed = int((~keep).sum())
            if removed:
                self.model.trim_user(state, keep)
                self.trim_log.setdefault(span_idx, {})[payload.user] = (
                    self.trim_log.get(span_idx, {}).get(payload.user, 0) + removed
                )
                obs.counter("imsr.capsules_trimmed", removed)
                obs.event("pit.trim", user=payload.user, span_id=span_idx,
                          epoch=epoch, removed=removed,
                          remaining=state.num_interests)

        # detect new interests (Eq. 14) and expand (Algorithm 1 lines 6-11)
        if (
            self.use_nid
            and not state.expanded_this_span
            and state.num_interests + self.delta_k <= self.max_interests
        ):
            # the NID verdict is mean_puzzlement > c1 (detect_new_interests);
            # computing the score directly lets telemetry record it
            score = mean_puzzlement(item_embs, state.interests)
            obs.observe("nid.puzzlement", score)
            if score > self.c1:
                self.model.expand_user(state, self.delta_k, span=span_idx)
                state.expanded_this_span = True
                self.expansion_log.setdefault(span_idx, []).append(payload.user)
                obs.counter("imsr.capsules_added", self.delta_k)
                obs.event("nid.expansion", user=payload.user, span_id=span_idx,
                          epoch=epoch, puzzlement=float(score),
                          delta_k=self.delta_k,
                          num_interests=state.num_interests)

    def _pit_hook(self, state: UserState, interests: Tensor) -> Tensor:
        """In-graph PIT projection (Eq. 16) of the span's new interests."""
        if not self.use_pit or state.num_interests <= state.n_existing:
            return interests
        projected = project_new_interests(interests, state.n_existing)
        if obs.enabled():
            norms = np.linalg.norm(projected.data[state.n_existing:], axis=1)
            obs.observe_many("pit.residual_norm", norms)
        return projected

    def _retention_loss(self, state: UserState, interests: Tensor,
                        payload: UserPayload) -> Optional[Tensor]:
        """EIR's distillation term (Eq. 10 or an ablation variant)."""
        if self.kd_weight <= 0 or state.prev_interests.shape[0] == 0:
            return None
        target_embs = self.model.embed_items(payload.targets)
        kd = self.retainer(
            interests, state.prev_interests, target_embs,
            temperature=self.temperature,
        )
        if obs.enabled():
            obs.observe("eir.kd_loss", float(kd.data))
            obs.event("eir.distill", user=payload.user,
                      span_id=self._current_span, kd=float(kd.data),
                      retainer=self.retainer_name)
        return kd * self.kd_weight

    # ------------------------------------------------------------------ #
    # Algorithm 2: the training procedure for one span
    # ------------------------------------------------------------------ #
    def train_span(self, t: int) -> float:
        self.set_current_span(t)
        span = self.split.spans[t - 1]
        for user in span.user_ids():
            self.states[user].begin_span()
        payloads = build_payloads(span, self.config)

        def epoch_hook(epoch: int, payload: UserPayload) -> None:
            self._ints_ex(epoch, payload, span_idx=t)

        start = time.perf_counter()
        self._train(
            payloads,
            epochs=self.config.epochs_incremental,
            loss_hook=self._retention_loss,
            epoch_hook=epoch_hook,
            interests_hook=self._pit_hook,
        )
        elapsed = time.perf_counter() - start

        self._refresh_snapshots(span, interests_hook=self._pit_hook)
        self.train_times[t] = elapsed
        return elapsed

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def mean_interest_count(self) -> float:
        return float(np.mean([s.num_interests for s in self.states.values()]))

    def user_puzzlement(self, user: int, items: List[int]) -> float:
        item_embs = self.model.item_emb.weight.data[items]
        return mean_puzzlement(item_embs, self.states[user].interests)
