"""Retainer-loss variants for the Fig. 5 ablation study.

The paper compares EIR's sigmoid distillation (Eq. 10) against a
Euclidean anchor (**DIR**) and three softmax-based distillation losses
(**KD1/KD2/KD3**, after LwF, semantic-aware KD, and BiC respectively).
All share the signature
``fn(interests, prev_interests, target_embs, temperature) -> Tensor``.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ...autograd import Tensor
from ...autograd.ops import log_softmax
from .eir import euclidean_retention_loss, sigmoid_distillation_loss

RetainerFn = Callable[..., Tensor]


def _teacher_softmax(logits: np.ndarray, axis: int) -> np.ndarray:
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def kd1_softmax_over_interests(
    interests: Tensor, prev_interests: np.ndarray, target_embs: Tensor,
    temperature: float = 1.0,
) -> Tensor:
    """KD1 (LwF-style): per target item, match the distribution *over
    existing interests* — which interest would claim this item."""
    k_prev = prev_interests.shape[0]
    if k_prev == 0:
        return Tensor(0.0)
    student_logits = (target_embs @ interests[:k_prev].T) * (1.0 / temperature)
    teacher_logits = (target_embs.data @ prev_interests.T) / temperature  # repro: noqa[RA102] teacher distribution is a constant (LwF)
    teacher = Tensor(_teacher_softmax(teacher_logits, axis=1))
    logp = log_softmax(student_logits, axis=1)
    return -(teacher * logp).sum(axis=1).mean()


def kd2_softmax_over_items(
    interests: Tensor, prev_interests: np.ndarray, target_embs: Tensor,
    temperature: float = 1.0,
) -> Tensor:
    """KD2 (semantic-aware style): per existing interest, match the
    distribution *over the span's target items* — which items this
    interest claims."""
    k_prev = prev_interests.shape[0]
    if k_prev == 0:
        return Tensor(0.0)
    student_logits = (interests[:k_prev] @ target_embs.T) * (1.0 / temperature)
    teacher_logits = (prev_interests @ target_embs.data.T) / temperature  # repro: noqa[RA102] teacher distribution is a constant (KD)
    teacher = Tensor(_teacher_softmax(teacher_logits, axis=1))
    logp = log_softmax(student_logits, axis=1)
    return -(teacher * logp).sum(axis=1).mean()


def kd3_scaled_softmax(
    interests: Tensor, prev_interests: np.ndarray, target_embs: Tensor,
    temperature: float = 1.0,
) -> Tensor:
    """KD3 (BiC-style): KD1's loss at doubled temperature with the
    classic ``τ²`` gradient-magnitude correction (Hinton et al., 2015)."""
    tau = 2.0 * temperature
    return kd1_softmax_over_interests(
        interests, prev_interests, target_embs, temperature=tau
    ) * (tau * tau)


def dir_euclidean(
    interests: Tensor, prev_interests: np.ndarray, target_embs: Tensor,
    temperature: float = 1.0,
) -> Tensor:
    """DIR: distance-based regularizer (ignores the targets)."""
    return euclidean_retention_loss(interests, prev_interests)


def eir_sigmoid(
    interests: Tensor, prev_interests: np.ndarray, target_embs: Tensor,
    temperature: float = 1.0,
) -> Tensor:
    """The paper's EIR (Eq. 10)."""
    return sigmoid_distillation_loss(
        interests, prev_interests, target_embs, temperature=temperature
    )


RETAINERS: Dict[str, RetainerFn] = {
    "EIR": eir_sigmoid,
    "DIR": dir_euclidean,
    "KD1": kd1_softmax_over_interests,
    "KD2": kd2_softmax_over_items,
    "KD3": kd3_scaled_softmax,
}


def get_retainer(name: str) -> RetainerFn:
    if name not in RETAINERS:
        raise KeyError(f"unknown retainer {name!r}; options: {sorted(RETAINERS)}")
    return RETAINERS[name]
