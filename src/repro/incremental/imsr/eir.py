"""EIR — Existing-Interests Retainer (paper Section IV-B, Eq. 10).

Treats the previous span's interest vectors as a teacher: for each
existing interest ``k`` and target item ``a``, the student logit
``h_k^t · e_a / τ`` is pulled toward the teacher logit
``h_k^{t-1} · e_a / τ`` through a sigmoid binary cross-entropy, following
the practical distillation form of Wang et al. (2020) that the paper
adopts.  Unlike a Euclidean penalty (the DIR ablation), this constrains
the interests' *behavior* on items rather than their coordinates, so an
interest may drift in representation space as long as it keeps scoring
items the same way — the paper's flip-phone → smartphone example.

The softmax-based alternatives KD1/KD2/KD3 used in the Fig. 5 ablation
live in :mod:`repro.incremental.imsr.variants`.
"""

from __future__ import annotations

import numpy as np

from ...autograd import Tensor
from ...autograd.ops import binary_cross_entropy, mse, sigmoid
from ...contracts import shape_contract


@shape_contract("(K, D) f, (Kp, D) f, (M, D) f, () -> () f")
def sigmoid_distillation_loss(
    interests: Tensor,
    prev_interests: np.ndarray,
    target_embs: Tensor,
    temperature: float = 1.0,
) -> Tensor:
    """Eq. 10: sigmoid-BCE between student and teacher interest logits.

    Parameters
    ----------
    interests:
        (K, d) current interest matrix, in-graph.  Only the first
        ``K_prev`` rows (the existing interests) are distilled.
    prev_interests:
        (K_prev, d) stored interests from the previous span (teacher —
        constant for backprop).
    target_embs:
        (m, d) embeddings of the span's target items ``e_a^t``.
    temperature:
        The ``τ`` softening both logits.
    """
    k_prev = prev_interests.shape[0]
    if k_prev == 0:
        return Tensor(0.0)
    student_logits = (interests[:k_prev] @ target_embs.T) * (1.0 / temperature)
    teacher_logits = (prev_interests @ target_embs.data.T) / temperature  # repro: noqa[RA102] teacher logits are constants by design (Eq. 10)
    teacher = Tensor(1.0 / (1.0 + np.exp(-teacher_logits)))  # detached σ
    return binary_cross_entropy(sigmoid(student_logits), teacher)


@shape_contract("(K, D) f, (Kp, D) f -> () f")
def euclidean_retention_loss(
    interests: Tensor,
    prev_interests: np.ndarray,
) -> Tensor:
    """DIR ablation: plain Euclidean anchoring of existing interests.

    The paper shows this is *less* flexible than distillation — small
    Euclidean moves can change an interest's semantics while large ones
    may be harmless, so constraining coordinates is the wrong metric.
    """
    k_prev = prev_interests.shape[0]
    if k_prev == 0:
        return Tensor(0.0)
    return mse(interests[:k_prev], Tensor(prev_interests))
