"""IMSR: existing-interests retainer, new-interests detector, trimmer."""

from .eir import euclidean_retention_loss, sigmoid_distillation_loss
from .nid import (
    detect_new_interests,
    kl_from_uniform,
    mean_puzzlement,
    puzzlement,
    puzzled_users,
)
from .pit import (
    orthogonal_residual,
    project_new_interests,
    projection_matrix,
    redundancy_report,
    trim_mask,
)
from .variants import RETAINERS, get_retainer
from .framework import IMSR

__all__ = [
    "IMSR",
    "sigmoid_distillation_loss",
    "euclidean_retention_loss",
    "puzzlement",
    "kl_from_uniform",
    "mean_puzzlement",
    "detect_new_interests",
    "puzzled_users",
    "projection_matrix",
    "orthogonal_residual",
    "project_new_interests",
    "trim_mask",
    "redundancy_report",
    "RETAINERS",
    "get_retainer",
]
