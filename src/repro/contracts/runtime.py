"""Runtime enforcement of shape contracts at call boundaries.

``@shape_contract("(B, T, D) f -> (B, K, D) f")`` registers the parsed
contract (so the static RA5xx pass, ``repro contracts list``, and the
coverage metrics all see one declarative source) and wraps the function
with a checker that is a single boolean test when enforcement is off —
near-zero overhead on hot paths.

Enforcement is off by default; turn it on with::

    repro.contracts.enforce(True)          # process-wide
    with repro.contracts.enforced():       # scoped
        ...
    REPRO_CHECK_SHAPES=1 python -m pytest  # from the environment

Violations raise :class:`ContractViolation` naming the function, the
offending argument/output, the declared spec, the concrete shape, and
the symbol binding accumulated from the other arguments.
"""

from __future__ import annotations

import functools
import inspect
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .spec import (
    Binding,
    Contract,
    ContractParseError,
    SkipSpec,
    TensorSpec,
    dtype_class_of,
    dtype_compatible,
    match_shape,
    parse_contract,
)


class ContractViolation(ValueError):
    """A concrete call broke its declared shape/dtype contract.

    A :class:`ValueError` subclass because that is what numpy itself
    raises for incompatible shapes — callers guarding with
    ``except ValueError`` keep working when enforcement is on.
    """


class ContractDefinitionError(ValueError):
    """The decorator itself is misused (bad spec, arity mismatch)."""


_TRUTHY = ("1", "true", "yes", "on")
_enabled = os.environ.get("REPRO_CHECK_SHAPES", "").strip().lower() in _TRUTHY


def enforce(on: bool = True) -> bool:
    """Set process-wide enforcement; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(on)
    return previous


def checking_enabled() -> bool:
    """Is runtime contract checking currently on?"""
    return _enabled


@contextmanager
def enforced(on: bool = True):
    """Scoped enforcement: ``with enforced(): ...``."""
    previous = enforce(on)
    try:
        yield
    finally:
        enforce(previous)


@dataclass
class ContractEntry:
    """One registered contract: where it lives and what it declares."""

    key: str            # "module.qualname"
    module: str
    qualname: str
    spec: str
    contract: Contract
    arg_names: Tuple[str, ...]

    def as_row(self) -> Tuple[str, str, str]:
        return (self.module, self.qualname, self.spec)


#: "module.qualname" -> entry, in registration (import) order
CONTRACT_REGISTRY: Dict[str, ContractEntry] = {}

#: dotted callable name -> spec string, for third-party-style call sites
#: the static pass should propagate through even though we cannot decorate
#: them.  Extend with :func:`register_external`.
EXTERNAL_CONTRACTS: Dict[str, str] = {}


def register_external(name: str, spec: str) -> Contract:
    """Declare a contract for an undecoratable callable (e.g. ``np.outer``).

    The static pass unifies call sites in decorated functions against it;
    there is no runtime wrapper (the callee is not ours to wrap).
    """
    contract = parse_contract(spec)  # fail fast on bad specs
    EXTERNAL_CONTRACTS[name] = spec
    return contract


# Shapes the analysis cannot special-case natively but that appear in
# numerically-flavoured call sites; kept deliberately small.
register_external("np.outer", "(N) any, (M) any -> (N, M) any")
register_external("np.ones_like", "(...S) any -> (...S) any")
register_external("np.zeros_like", "(...S) any -> (...S) any")


def _describe_value(value) -> Tuple[Optional[Tuple[int, ...]], Optional[str]]:
    """(shape, dtype-class) of a runtime value, or (None, None) to skip.

    Tensors and ndarrays are checked as-is; python/numpy scalars check as
    scalars; anything else (None, strings, dicts, Sequence[int] handles)
    is skipped — the contract's job is tensor geometry, not general typing.
    """
    data = getattr(value, "data", None)
    if isinstance(data, np.ndarray):          # repro Tensor / Parameter
        return data.shape, dtype_class_of(data.dtype)
    if isinstance(value, np.ndarray):
        return value.shape, dtype_class_of(value.dtype)
    if isinstance(value, (bool, np.bool_)):
        return (), "b"
    if isinstance(value, (int, np.integer)):
        return (), "i"
    if isinstance(value, (float, np.floating)):
        return (), "f"
    return None, None


def _check_value(entry_key: str, where: str, spec: TensorSpec, value,
                 binding: Binding) -> None:
    if value is None:
        return
    shape, dtype_cls = _describe_value(value)
    if shape is None:
        return
    error = match_shape(spec, shape, binding)
    if error is not None:
        raise ContractViolation(
            f"{entry_key}: {where} violates {spec}: {error}")
    if dtype_cls is not None and not dtype_compatible(spec.dtype, dtype_cls):
        raise ContractViolation(
            f"{entry_key}: {where} violates {spec}: dtype class "
            f"'{dtype_cls}' does not satisfy declared '{spec.dtype}'")


def _contract_arg_names(fn: Callable, contract: Contract,
                        spec: str) -> Tuple[str, ...]:
    """Parameter names the contract's input specs bind to (self excluded)."""
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):
        raise ContractDefinitionError(
            f"cannot inspect signature of {fn!r} for contract {spec!r}")
    params = [p for p in sig.parameters.values()
              if p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)]
    if params and params[0].name in ("self", "cls"):
        params = params[1:]
    if len(contract.inputs) > len(params):
        raise ContractDefinitionError(
            f"contract {spec!r} declares {len(contract.inputs)} argument "
            f"spec(s) but {fn.__qualname__} only has {len(params)} "
            f"checkable parameter(s)")
    return tuple(p.name for p in params[:len(contract.inputs)])


def shape_contract(spec: str) -> Callable[[Callable], Callable]:
    """Attach a shape/dtype contract to a function or method.

    The spec grammar lives in :mod:`repro.contracts.spec`.  Contract
    input specs bind to the function's leading parameters (``self`` is
    skipped); use ``_`` for parameters that should not be checked.
    """
    try:
        contract = parse_contract(spec)
    except ContractParseError as exc:
        raise ContractDefinitionError(str(exc)) from exc

    def decorate(fn: Callable) -> Callable:
        arg_names = _contract_arg_names(fn, contract, spec)
        # exec'd snippets (tests, REPLs) may have no __module__
        module = fn.__module__ or "<dynamic>"
        key = f"{module}.{fn.__qualname__}"
        entry = ContractEntry(
            key=key,
            module=module,
            qualname=fn.__qualname__,
            spec=contract.spec,
            contract=contract,
            arg_names=arg_names,
        )
        CONTRACT_REGISTRY[key] = entry
        sig = inspect.signature(fn)

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            binding = Binding()
            try:
                bound = sig.bind(*args, **kwargs)
            except TypeError:
                # let the call itself raise the natural signature error
                return fn(*args, **kwargs)
            for name, arg_spec in zip(arg_names, contract.inputs):
                if isinstance(arg_spec, SkipSpec) or name not in bound.arguments:
                    continue
                _check_value(key, f"argument '{name}'", arg_spec,
                             bound.arguments[name], binding)
            result = fn(*args, **kwargs)
            outputs = contract.outputs
            values = result if isinstance(result, tuple) else (result,)
            if len(outputs) == len(values):
                for i, (out_spec, value) in enumerate(zip(outputs, values)):
                    if isinstance(out_spec, SkipSpec):
                        continue
                    where = ("return value" if len(outputs) == 1
                             else f"return value [{i}]")
                    _check_value(key, where, out_spec, value, binding)
            elif len(outputs) > 1:
                raise ContractViolation(
                    f"{key}: contract declares {len(outputs)} outputs but the "
                    f"call returned "
                    f"{len(values) if isinstance(result, tuple) else 1}")
            return result

        wrapper.__contract__ = entry  # type: ignore[attr-defined]
        return wrapper

    return decorate


def contract_for(fn: Callable) -> Optional[ContractEntry]:
    """The entry attached to a decorated function, if any."""
    return getattr(fn, "__contract__", None)


def load_annotated() -> int:
    """Import every module that carries contracts; returns registry size.

    ``repro contracts list`` and tooling call this so the registry is
    fully populated without requiring a full experiment import.
    """
    import importlib

    for module in (
        "repro.autograd.ops",
        "repro.nn.layers",
        "repro.models.routing",
        "repro.models.aggregator",
        "repro.models.sampled_softmax",
        "repro.incremental.imsr.nid",
        "repro.incremental.imsr.pit",
        "repro.incremental.imsr.eir",
        "repro.eval.metrics",
        "repro.faults",
    ):
        importlib.import_module(module)
    return len(CONTRACT_REGISTRY)


def registry_rows() -> List[Tuple[str, str, str]]:
    """(module, qualname, spec) rows sorted by module then name."""
    return sorted(e.as_row() for e in CONTRACT_REGISTRY.values())
