"""The shape/dtype contract DSL — the single declarative source consumed
by both enforcement layers.

A contract is a compact spec string::

    "(B, T, D) f, (K, D) f -> (B, K, D) f"

attached to a function with :func:`repro.contracts.shape_contract`.  The
same parsed :class:`Contract` object drives

* the **static** RA5xx pass (:mod:`repro.analysis.shapes`), which
  propagates symbolic dimensions through the decorated function's AST, and
* the **runtime** checker (:mod:`repro.contracts.runtime`), which binds
  the symbols against concrete ``ndarray``/``Tensor`` shapes at call
  boundaries when enforcement is on.

Grammar (argument specs separated by top-level commas, ``->`` between
inputs and outputs)::

    contract := specs '->' specs
    specs    := spec (',' spec)*
    spec     := '_'                      -- argument not checked
              | '(' dims ')' [dtype]
    dims     := ε | dim (',' dim)*
    dim      := NAME                     -- symbolic dimension variable
              | INT                      -- fixed size
              | '*'                      -- any single dimension
              | '...' [NAME]             -- any run of dimensions
                                           (named runs must match)
    dtype    := 'f32' | 'f64' | 'f' | 'i32' | 'i64' | 'i' | 'b' | 'any'

``()`` is a scalar (python numbers and 0-d arrays match it).  A dimension
NAME is bound on first use and must agree everywhere it reappears within
one call — that cross-argument/cross-output agreement is the whole point.
At most one ellipsis is allowed per shape.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union


class ContractParseError(ValueError):
    """Raised for a malformed spec string (statically: RA502)."""


#: dtype classes the DSL knows about.  ``f``/``i`` accept any float/int
#: width; ``any`` (the default) accepts everything.
DTYPE_TOKENS = ("f32", "f64", "f", "i32", "i64", "i", "b", "any")

_NAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_]*$")
_INT_RE = re.compile(r"^\d+$")


@dataclass(frozen=True)
class SymDim:
    """A named symbolic dimension variable (``B``, ``K``, ``dK``...)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FixedDim:
    """A concrete integer dimension."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class AnyDim:
    """``*`` — one dimension of any size, never constrained."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class EllipsisDim:
    """``...`` / ``...NAME`` — a (possibly empty) run of dimensions."""

    name: Optional[str] = None

    def __str__(self) -> str:
        return "..." + (self.name or "")


Dim = Union[SymDim, FixedDim, AnyDim, EllipsisDim]


@dataclass(frozen=True)
class TensorSpec:
    """One argument/output position: a shape pattern plus a dtype class."""

    dims: Tuple[Dim, ...]
    dtype: str = "any"

    @property
    def ellipsis_index(self) -> Optional[int]:
        for i, d in enumerate(self.dims):
            if isinstance(d, EllipsisDim):
                return i
        return None

    @property
    def min_ndim(self) -> int:
        return len(self.dims) - (1 if self.ellipsis_index is not None else 0)

    def __str__(self) -> str:
        inner = ", ".join(str(d) for d in self.dims)
        out = f"({inner})"
        if self.dtype != "any":
            out += f" {self.dtype}"
        return out


@dataclass(frozen=True)
class SkipSpec:
    """``_`` — the argument is deliberately unchecked."""

    def __str__(self) -> str:
        return "_"


ArgSpec = Union[TensorSpec, SkipSpec]


@dataclass(frozen=True)
class Contract:
    """A parsed contract: input specs, output specs, the original text."""

    inputs: Tuple[ArgSpec, ...]
    outputs: Tuple[ArgSpec, ...]
    spec: str = ""

    def symbol_names(self) -> List[str]:
        """Every SymDim / named-ellipsis name, inputs first, in order."""
        seen: List[str] = []
        for spec in (*self.inputs, *self.outputs):
            if not isinstance(spec, TensorSpec):
                continue
            for dim in spec.dims:
                name = None
                if isinstance(dim, SymDim):
                    name = dim.name
                elif isinstance(dim, EllipsisDim) and dim.name:
                    name = "..." + dim.name
                if name is not None and name not in seen:
                    seen.append(name)
        return seen

    def input_symbols(self) -> List[str]:
        """Names bound by the inputs (the outputs may introduce more)."""
        partial = Contract(inputs=self.inputs, outputs=())
        return partial.symbol_names()

    def __str__(self) -> str:
        return self.spec or "{} -> {}".format(
            ", ".join(str(s) for s in self.inputs),
            ", ".join(str(s) for s in self.outputs),
        )


def _split_top_level(text: str) -> List[str]:
    """Split on commas not nested inside parentheses."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ContractParseError(f"unbalanced ')' in {text!r}")
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise ContractParseError(f"unbalanced '(' in {text!r}")
    parts.append("".join(current))
    return parts


def _parse_dim(token: str, spec_text: str) -> Dim:
    token = token.strip()
    if token.startswith("..."):
        name = token[3:].strip()
        if name and not _NAME_RE.match(name):
            raise ContractParseError(
                f"bad ellipsis name {name!r} in {spec_text!r}")
        return EllipsisDim(name or None)
    if token == "*" or token == "_":
        return AnyDim()
    if _INT_RE.match(token):
        return FixedDim(int(token))
    if _NAME_RE.match(token):
        return SymDim(token)
    raise ContractParseError(f"bad dimension token {token!r} in {spec_text!r}")


def _parse_spec(text: str) -> ArgSpec:
    text = text.strip()
    if not text:
        raise ContractParseError("empty argument spec (stray comma?)")
    if text == "_":
        return SkipSpec()
    if not text.startswith("("):
        raise ContractParseError(
            f"argument spec must be '_' or start with '(': {text!r}")
    close = text.rfind(")")
    if close < 0:
        raise ContractParseError(f"missing ')' in {text!r}")
    inner = text[1:close]
    trailer = text[close + 1:].strip()
    dtype = "any"
    if trailer:
        if trailer not in DTYPE_TOKENS:
            raise ContractParseError(
                f"unknown dtype {trailer!r} in {text!r} "
                f"(expected one of {', '.join(DTYPE_TOKENS)})")
        dtype = trailer
    dims: List[Dim] = []
    if inner.strip():
        for token in inner.split(","):
            if not token.strip():
                raise ContractParseError(f"empty dimension in {text!r}")
            dims.append(_parse_dim(token, text))
    if sum(isinstance(d, EllipsisDim) for d in dims) > 1:
        raise ContractParseError(f"more than one '...' in {text!r}")
    return TensorSpec(dims=tuple(dims), dtype=dtype)


def parse_contract(spec: str) -> Contract:
    """Parse a spec string; raises :class:`ContractParseError` on errors."""
    if not isinstance(spec, str):
        raise ContractParseError(f"spec must be a string, got {type(spec)!r}")
    if spec.count("->") != 1:
        raise ContractParseError(
            f"spec needs exactly one '->' separating inputs from outputs: "
            f"{spec!r}")
    left, right = spec.split("->")
    if not left.strip() or not right.strip():
        raise ContractParseError(f"empty input or output side in {spec!r}")
    inputs = tuple(_parse_spec(p) for p in _split_top_level(left))
    outputs = tuple(_parse_spec(p) for p in _split_top_level(right))
    return Contract(inputs=inputs, outputs=outputs, spec=spec.strip())


# --------------------------------------------------------------------- #
# concrete (runtime) matching
# --------------------------------------------------------------------- #

#: dtype-class compatibility: spec token -> predicate over numpy kind/size
def dtype_class_of(dtype) -> str:
    """Classify a numpy dtype into the DSL's dtype tokens."""
    import numpy as np

    dt = np.dtype(dtype)
    if dt.kind == "f":
        return {4: "f32", 8: "f64"}.get(dt.itemsize, "f")
    if dt.kind in "iu":
        return {4: "i32", 8: "i64"}.get(dt.itemsize, "i")
    if dt.kind == "b":
        return "b"
    return "any"


def dtype_compatible(declared: str, actual_class: str) -> bool:
    """Does a concrete dtype class satisfy a declared dtype token?"""
    if declared == "any" or actual_class == "any":
        return True
    if declared == actual_class:
        return True
    if declared == "f":
        return actual_class in ("f32", "f64", "f")
    if declared == "i":
        return actual_class in ("i32", "i64", "i")
    return False


class Binding(dict):
    """Concrete symbol environment for one call: name -> int,
    '...name' -> tuple of ints."""


def match_shape(spec: TensorSpec, shape: Sequence[int],
                binding: Binding) -> Optional[str]:
    """Unify a concrete ``shape`` against ``spec`` updating ``binding``.

    Returns an error message, or None on success.
    """
    shape = tuple(int(s) for s in shape)
    ell = spec.ellipsis_index
    if ell is None:
        if len(shape) != len(spec.dims):
            return (f"expected {len(spec.dims)} dim(s) {spec}, "
                    f"got shape {shape}")
        head, tail = spec.dims, ()
        mid: Tuple[int, ...] = ()
        head_shape, tail_shape = shape, ()
    else:
        if len(shape) < spec.min_ndim:
            return (f"expected at least {spec.min_ndim} dim(s) {spec}, "
                    f"got shape {shape}")
        head = spec.dims[:ell]
        tail = spec.dims[ell + 1:]
        head_shape = shape[:len(head)]
        tail_shape = shape[len(shape) - len(tail):] if tail else ()
        mid = shape[len(head):len(shape) - len(tail)]
        ell_dim = spec.dims[ell]
        assert isinstance(ell_dim, EllipsisDim)
        if ell_dim.name:
            key = "..." + ell_dim.name
            if key in binding and binding[key] != mid:
                return (f"'...{ell_dim.name}' already bound to "
                        f"{binding[key]}, got {mid}")
            binding[key] = mid
    for dim, size in zip((*head, *tail), (*head_shape, *tail_shape)):
        if isinstance(dim, AnyDim):
            continue
        if isinstance(dim, FixedDim):
            if size != dim.value:
                return f"dim {dim} expected, got {size} (shape {shape})"
        elif isinstance(dim, SymDim):
            bound = binding.get(dim.name)
            if bound is None:
                binding[dim.name] = size
            elif bound != size:
                return (f"dim '{dim.name}' bound to {bound} elsewhere, "
                        f"got {size} (shape {shape})")
    return None
