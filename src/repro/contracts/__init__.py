"""Shape/dtype contracts for the numpy substrate.

Numpy broadcasting silently turns shape mistakes into plausible-but-wrong
numbers.  This package gives every geometry-critical function a compact,
machine-checked contract::

    from repro.contracts import shape_contract

    @shape_contract("(N, D) f, (K, D) f -> (N, K) f")
    def affinity(items, interests):
        return items @ interests.T

One declarative spec feeds two enforcement layers:

* **static** — ``repro lint`` (rules RA501–RA504 in
  :mod:`repro.analysis.shapes`) propagates the symbolic dims through the
  function body and flags contradictions at build time;
* **runtime** — :func:`enforce` / ``REPRO_CHECK_SHAPES=1`` checks the
  same specs against concrete shapes at call boundaries, catching the
  fuzzy cases the static pass soundly skips.

``repro contracts list`` prints the registry.
"""

from .runtime import (
    CONTRACT_REGISTRY,
    EXTERNAL_CONTRACTS,
    ContractDefinitionError,
    ContractEntry,
    ContractViolation,
    checking_enabled,
    contract_for,
    enforce,
    enforced,
    load_annotated,
    register_external,
    registry_rows,
    shape_contract,
)
from .spec import (
    Contract,
    ContractParseError,
    parse_contract,
)

__all__ = [
    "CONTRACT_REGISTRY",
    "Contract",
    "ContractDefinitionError",
    "ContractEntry",
    "ContractParseError",
    "ContractViolation",
    "EXTERNAL_CONTRACTS",
    "checking_enabled",
    "contract_for",
    "enforce",
    "enforced",
    "load_annotated",
    "parse_contract",
    "register_external",
    "registry_rows",
    "shape_contract",
]
