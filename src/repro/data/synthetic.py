"""Synthetic *interest world*: the stand-in for Amazon / Taobao logs.

The paper evaluates on four proprietary-scale public logs which are not
available offline, so we generate streams with the same structural
properties the paper's mechanisms exploit:

* items cluster into latent **topics** (ground-truth interests);
* each user holds a small set of **active topics** that (a) reappear across
  time spans (the paper cites >80% reappearance) and (b) **grows**: users
  adopt new topics over time, at a dataset-dependent rate — the phenomenon
  NID/PIT exist to capture;
* topic item-popularity is skewed (Zipf), and the item catalog widens over
  time so later spans contain genuinely new items;
* user interest composition drifts slowly (topic mixture weights wander),
  which is what EIR's "modest drifting" accommodates.

Ground truth (each user's active-topic timeline) is retained on the
generated world so tests and case studies can verify that e.g. NID fires
exactly for users who adopted a new topic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import numpy as np

from .schema import Interaction


@dataclass
class WorldConfig:
    """Knobs for the synthetic interest world.

    The per-dataset presets in :mod:`repro.data.datasets` instantiate this
    to mirror the paper's qualitative dataset contrasts.
    """

    num_users: int = 120
    num_items: int = 800
    num_topics: int = 24
    latent_dim: int = 16
    #: topics each user starts with (the paper pretrains with K=4 interests)
    init_topics_per_user: Tuple[int, int] = (2, 4)
    #: probability per span that a user adopts new topics
    new_topic_rate: float = 0.35
    #: how many topics are adopted when adoption happens
    new_topics_range: Tuple[int, int] = (1, 2)
    #: number of incremental time spans (paper: T = 6)
    num_spans: int = 6
    #: interactions per user in the pretraining period
    pretrain_events_per_user: Tuple[int, int] = (30, 60)
    #: interactions per user per incremental span
    span_events_per_user: Tuple[int, int] = (8, 16)
    #: Zipf exponent for item popularity inside a topic
    popularity_exponent: float = 1.2
    #: probability an interaction is pure noise (random item)
    noise_rate: float = 0.05
    #: probability a user is active (interacts at all) in a given span;
    #: inactive-then-returning users are where forgetting hurts most
    span_activity: float = 0.75
    #: fraction of users who are *not* present during pretraining and
    #: instead arrive cold at a later span (growing user base)
    cold_start_fraction: float = 0.0
    #: fraction of items available from the start; the rest are released
    #: gradually across spans so later spans contain new items
    initial_catalog_fraction: float = 0.7
    #: std of the per-span random walk applied to users' topic weights
    drift_std: float = 0.15
    seed: int = 0


@dataclass
class InterestWorld:
    """A generated world: the interaction stream plus its ground truth."""

    config: WorldConfig
    interactions: List[Interaction]
    #: item -> topic id
    item_topics: np.ndarray
    #: per user, per period (0 = pretraining, 1..T = spans): active topic set
    user_topic_timeline: Dict[int, List[Set[int]]]
    #: topic latent centers, (num_topics, latent_dim)
    topic_centers: np.ndarray
    #: items available from each period onward: period index per item
    item_release_period: np.ndarray

    @property
    def num_users(self) -> int:
        return self.config.num_users

    @property
    def num_items(self) -> int:
        return self.config.num_items

    def new_topic_users(self, period: int) -> Set[int]:
        """Users whose active-topic set grew at ``period`` (ground truth)."""
        grew = set()
        for user, timeline in self.user_topic_timeline.items():
            if period < len(timeline) and timeline[period] - timeline[period - 1]:
                grew.add(user)
        return grew


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def generate_world(config: WorldConfig) -> InterestWorld:
    """Generate an :class:`InterestWorld` from ``config`` (deterministic)."""
    rng = np.random.default_rng(config.seed)
    n_periods = config.num_spans + 1  # period 0 is the pretraining window

    # --- topics and items -------------------------------------------------
    topic_centers = rng.normal(size=(config.num_topics, config.latent_dim))
    item_topics = rng.integers(0, config.num_topics, size=config.num_items)
    # Release schedule: a prefix of items is live from period 0, the rest
    # are spread uniformly over the incremental spans.
    release = np.zeros(config.num_items, dtype=np.int64)
    n_late = int(round(config.num_items * (1.0 - config.initial_catalog_fraction)))
    if n_late > 0 and config.num_spans > 0:
        late_items = rng.choice(config.num_items, size=n_late, replace=False)
        release[late_items] = rng.integers(1, config.num_spans + 1, size=n_late)

    # Pre-compute, per (topic, period), the candidate items and popularity.
    topic_items: List[np.ndarray] = [
        np.where(item_topics == t)[0] for t in range(config.num_topics)
    ]

    def items_for(topic: int, period: int) -> Tuple[np.ndarray, np.ndarray]:
        pool = topic_items[topic]
        live = pool[release[pool] <= period]
        if live.size == 0:
            live = pool if pool.size else np.arange(config.num_items)
        return live, _zipf_weights(live.size, config.popularity_exponent)

    # --- users -------------------------------------------------------------
    interactions: List[Interaction] = []
    timeline: Dict[int, List[Set[int]]] = {}

    span_width = 0.5 / config.num_spans if config.num_spans else 0.5

    n_cold = int(round(config.num_users * config.cold_start_fraction))
    cold_users = set(
        rng.choice(config.num_users, size=n_cold, replace=False).tolist()
    ) if n_cold and config.num_spans else set()
    arrival_span = {
        user: int(rng.integers(1, config.num_spans + 1)) for user in cold_users
    }

    for user in range(config.num_users):
        k0 = rng.integers(config.init_topics_per_user[0],
                          config.init_topics_per_user[1] + 1)
        active: Set[int] = set(
            rng.choice(config.num_topics, size=k0, replace=False).tolist()
        )
        weights: Dict[int, float] = {t: float(rng.uniform(0.5, 1.5)) for t in active}
        user_timeline = [set(active)]

        def emit(count: int, period: int, t_lo: float, t_hi: float) -> None:
            topics = sorted(active)
            probs = np.array([max(weights[t], 1e-3) for t in topics])
            probs = probs / probs.sum()
            times = np.sort(rng.uniform(t_lo, t_hi, size=count))
            for ts in times:
                if rng.uniform() < config.noise_rate:
                    live = np.where(release <= period)[0]
                    item = int(rng.choice(live))
                else:
                    topic = int(rng.choice(topics, p=probs))
                    live, pop = items_for(topic, period)
                    item = int(rng.choice(live, p=pop))
                interactions.append(Interaction(user, item, float(ts)))

        # pretraining period covers timestamps [0, 0.5); cold-start users
        # produce nothing until their arrival span
        n_pre = rng.integers(config.pretrain_events_per_user[0],
                             config.pretrain_events_per_user[1] + 1)
        if user not in cold_users:
            emit(int(n_pre), 0, 0.0, 0.5)

        # incremental spans cover [0.5, 1.0), equally divided
        for span in range(1, config.num_spans + 1):
            # topic drift: mixture weights take a small random-walk step
            for t in list(weights):
                weights[t] = max(0.05, weights[t] + rng.normal(0, config.drift_std))
            # new-interest adoption
            if rng.uniform() < config.new_topic_rate:
                n_new = rng.integers(config.new_topics_range[0],
                                     config.new_topics_range[1] + 1)
                candidates = [t for t in range(config.num_topics) if t not in active]
                if candidates:
                    chosen = rng.choice(candidates,
                                        size=min(int(n_new), len(candidates)),
                                        replace=False)
                    for t in chosen:
                        active.add(int(t))
                        # newly adopted interests start strong
                        weights[int(t)] = float(rng.uniform(1.0, 2.0))
            user_timeline.append(set(active))
            if user in cold_users and span < arrival_span[user]:
                continue  # user has not arrived yet
            arriving_now = user in cold_users and span == arrival_span[user]
            if not arriving_now and rng.uniform() >= config.span_activity:
                continue  # user sits this span out (returns later)
            n_events = rng.integers(config.span_events_per_user[0],
                                    config.span_events_per_user[1] + 1)
            lo = 0.5 + (span - 1) * span_width
            emit(int(n_events), span, lo, lo + span_width)

        timeline[user] = user_timeline

    interactions.sort(key=lambda e: e.timestamp)
    return InterestWorld(
        config=config,
        interactions=interactions,
        item_topics=item_topics,
        user_topic_timeline=timeline,
        topic_centers=topic_centers,
        item_release_period=release,
    )
