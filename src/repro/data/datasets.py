"""Dataset presets mirroring the paper's four benchmarks.

The paper uses Amazon **Electronics / Clothing / Books** and **Taobao**.
Full logs are unavailable offline; these presets configure the synthetic
interest world (:mod:`repro.data.synthetic`) to reproduce each dataset's
*qualitative* role in the evaluation:

* ``books`` — interests are stable (low adoption rate): EIR matters most.
* ``taobao`` — huge catalog, fast interest change (high adoption rate):
  NID + PIT matter most; incremental baselines degrade fastest.
* ``electronics`` / ``clothing`` — intermediate regimes.

All presets share the paper's protocol constants T = 6, alpha = 0.5 and
scale linearly with the ``scale`` argument so tests can run tiny worlds
and benchmarks can run bigger ones.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from .synthetic import WorldConfig, generate_world
from .timespans import split_time_spans

T_SPANS = 6
ALPHA = 0.5

_PRESETS: Dict[str, WorldConfig] = {
    "electronics": WorldConfig(
        num_users=96, num_items=600, num_topics=24,
        new_topic_rate=0.30, initial_catalog_fraction=0.72,
        popularity_exponent=1.2, span_activity=0.75, seed=101,
    ),
    "clothing": WorldConfig(
        num_users=112, num_items=720, num_topics=30,
        new_topic_rate=0.35, initial_catalog_fraction=0.70,
        popularity_exponent=1.1, span_activity=0.75, seed=102,
    ),
    "books": WorldConfig(
        num_users=128, num_items=800, num_topics=20,
        new_topic_rate=0.15, initial_catalog_fraction=0.80,
        popularity_exponent=1.3, span_activity=0.70, seed=103,
    ),
    "taobao": WorldConfig(
        num_users=144, num_items=1200, num_topics=48,
        new_topic_rate=0.55, new_topics_range=(1, 3),
        initial_catalog_fraction=0.60,
        popularity_exponent=1.0, span_activity=0.85, seed=104,
    ),
}

DATASET_NAMES = tuple(sorted(_PRESETS))


def dataset_config(name: str, scale: float = 1.0, seed_offset: int = 0) -> WorldConfig:
    """Return the preset :class:`WorldConfig` for ``name``, scaled.

    ``scale`` multiplies user/item/topic counts; ``seed_offset`` shifts the
    seed for repeated-experiment averaging (the paper averages 10 runs).
    """
    if name not in _PRESETS:
        raise KeyError(f"unknown dataset {name!r}; options: {DATASET_NAMES}")
    base = _PRESETS[name]
    if scale <= 0:
        raise ValueError("scale must be positive")
    return replace(
        base,
        num_users=max(8, int(round(base.num_users * scale))),
        num_items=max(50, int(round(base.num_items * scale))),
        num_topics=max(6, int(round(base.num_topics * min(scale, 1.0) ** 0.5))),
        seed=base.seed + seed_offset,
    )


def load_dataset(name: str, scale: float = 1.0, seed_offset: int = 0) -> tuple:
    """Generate a preset world and split it into time spans.

    Returns ``(world, split)`` where ``split`` is a :class:`TemporalSplit`
    with T = 6 spans and alpha = 0.5, matching the paper.
    """
    config = dataset_config(name, scale=scale, seed_offset=seed_offset)
    world = generate_world(config)
    split = split_time_spans(
        world.interactions, num_items=config.num_items, T=T_SPANS, alpha=ALPHA
    )
    return world, split


def load_custom(config: WorldConfig, T: int = T_SPANS, alpha: float = ALPHA) -> tuple:
    """Generate a world from an explicit config and split it."""
    world = generate_world(config)
    split = split_time_spans(
        world.interactions, num_items=config.num_items, T=T, alpha=alpha
    )
    return world, split
