"""Data substrate: synthetic interest world, time spans, sampling, stats."""

from .schema import (
    Interaction,
    SpanDataset,
    TemporalSplit,
    UserSpanData,
    interactions_by_user,
)
from .synthetic import InterestWorld, WorldConfig, generate_world
from .timespans import split_time_spans
from .sampler import NegativeSampler, TrainExample, iterate_minibatches, span_training_examples
from .datasets import ALPHA, DATASET_NAMES, T_SPANS, dataset_config, load_custom, load_dataset
from .stats import DatasetStats, compute_stats, interest_reappearance_rate
from .loaders import LoadedDataset, load_amazon_ratings, load_taobao_userbehavior

__all__ = [
    "Interaction",
    "SpanDataset",
    "TemporalSplit",
    "UserSpanData",
    "interactions_by_user",
    "InterestWorld",
    "WorldConfig",
    "generate_world",
    "split_time_spans",
    "NegativeSampler",
    "TrainExample",
    "iterate_minibatches",
    "span_training_examples",
    "ALPHA",
    "DATASET_NAMES",
    "T_SPANS",
    "dataset_config",
    "load_custom",
    "load_dataset",
    "DatasetStats",
    "compute_stats",
    "interest_reappearance_rate",
    "LoadedDataset",
    "load_amazon_ratings",
    "load_taobao_userbehavior",
]
