"""Core data types shared across the reproduction.

The paper's input is a set of (user, item, timestamp) interactions split
into a pre-training period plus ``T`` incremental time spans.  These types
capture that structure in a backend-agnostic way: the synthetic generator
produces :class:`Interaction` streams, and :mod:`repro.data.timespans`
turns them into :class:`TemporalSplit` objects the strategies consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class Interaction:
    """A single user-item interaction (the paper's ``(u, i, s)`` triple)."""

    user: int
    item: int
    timestamp: float


@dataclass
class UserSpanData:
    """One user's data inside one time span, split leave-one-out style.

    Following the paper's protocol: the latest interaction is the test
    target, the second latest is the validation target, everything earlier
    in the span is training data.
    """

    user: int
    train_items: List[int] = field(default_factory=list)
    val_item: Optional[int] = None
    test_item: Optional[int] = None

    @property
    def all_items(self) -> List[int]:
        items = list(self.train_items)
        if self.val_item is not None:
            items.append(self.val_item)
        if self.test_item is not None:
            items.append(self.test_item)
        return items


@dataclass
class SpanDataset:
    """All users' data for one time span."""

    span_index: int
    users: Dict[int, UserSpanData] = field(default_factory=dict)

    def num_interactions(self) -> int:
        return sum(len(u.all_items) for u in self.users.values())

    def user_ids(self) -> List[int]:
        return sorted(self.users)

    def __contains__(self, user: int) -> bool:
        return user in self.users


@dataclass
class TemporalSplit:
    """Pre-training dataset plus ``T`` incremental span datasets."""

    pretrain: SpanDataset
    spans: List[SpanDataset]
    num_users: int
    num_items: int

    @property
    def T(self) -> int:
        return len(self.spans)

    def cumulative_train_items(self, user: int, up_to_span: int) -> List[int]:
        """All items user interacted with from pretraining through span
        ``up_to_span`` inclusive (used by the full-retraining strategy)."""
        items: List[int] = []
        if user in self.pretrain:
            items.extend(self.pretrain.users[user].all_items)
        for span in self.spans[: up_to_span + 1]:
            if user in span:
                items.extend(span.users[user].all_items)
        return items


def interactions_by_user(
    interactions: Sequence[Interaction],
) -> Dict[int, List[Interaction]]:
    """Group interactions per user, sorted chronologically."""
    grouped: Dict[int, List[Interaction]] = {}
    for inter in interactions:
        grouped.setdefault(inter.user, []).append(inter)
    for events in grouped.values():
        events.sort(key=lambda e: e.timestamp)
    return grouped
