"""Time-span splitting (the paper's Section V-A.1 protocol).

The timeline ``[0, Z]`` is split into ``T + 1`` windows: ``[0, alpha*Z]``
is the pre-training window and ``[alpha*Z, Z]`` is divided equally into
``T`` incremental spans (paper: ``T = 6``, ``alpha = 0.5``).  Within each
span and user, the latest interaction is the test target, the second
latest the validation target, and the rest are training data.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .schema import Interaction, SpanDataset, TemporalSplit, UserSpanData, interactions_by_user


def split_time_spans(
    interactions: Sequence[Interaction],
    num_items: int,
    T: int = 6,
    alpha: float = 0.5,
    min_user_interactions: int = 0,
) -> TemporalSplit:
    """Split an interaction stream into a :class:`TemporalSplit`.

    Parameters
    ----------
    interactions:
        The raw stream; timestamps can be on any scale.
    num_items:
        Catalog size (carried through for model construction).
    T, alpha:
        Number of incremental spans and pre-training fraction.
    min_user_interactions:
        Drop users with fewer total interactions (the paper discards
        users with fewer than 30).
    """
    if not interactions:
        raise ValueError("no interactions to split")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if T < 1:
        raise ValueError(f"T must be >= 1, got {T}")

    grouped = interactions_by_user(interactions)
    if min_user_interactions:
        grouped = {
            u: evts for u, evts in grouped.items()
            if len(evts) >= min_user_interactions
        }
    if not grouped:
        raise ValueError("all users were filtered out")

    t_min = min(e.timestamp for e in interactions)
    t_max = max(e.timestamp for e in interactions)
    z = t_max - t_min if t_max > t_min else 1.0
    boundary = t_min + alpha * z
    span_width = (1.0 - alpha) * z / T

    def period_of(ts: float) -> int:
        if ts < boundary:
            return 0
        idx = int((ts - boundary) // span_width) + 1
        return min(idx, T)

    pretrain = SpanDataset(span_index=0)
    spans = [SpanDataset(span_index=i + 1) for i in range(T)]

    for user, events in grouped.items():
        per_period: Dict[int, List[int]] = {}
        for e in events:
            per_period.setdefault(period_of(e.timestamp), []).append(e.item)
        for period, items in per_period.items():
            data = _leave_one_out(user, items)
            if period == 0:
                pretrain.users[user] = data
            else:
                spans[period - 1].users[user] = data

    return TemporalSplit(
        pretrain=pretrain,
        spans=spans,
        num_users=len(grouped),
        num_items=num_items,
    )


def _leave_one_out(user: int, items: List[int]) -> UserSpanData:
    """Split one user's in-span item list into train / val / test."""
    data = UserSpanData(user=user)
    if len(items) >= 3:
        data.train_items = items[:-2]
        data.val_item = items[-2]
        data.test_item = items[-1]
    elif len(items) == 2:
        data.train_items = items[:-1]
        data.test_item = items[-1]
    else:
        data.train_items = list(items)
    return data
