"""Negative sampling and training-example iteration.

The sampled-softmax loss (Eq. 6) contrasts the target item against a small
uniformly sampled negative set ``I' ⊂ I \\ {i_a}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from .schema import SpanDataset


@dataclass
class TrainExample:
    """One training instance: a history prefix and its next-item target."""

    user: int
    history: List[int]
    target: int


class NegativeSampler:
    """Uniform negative sampler over the item catalog, excluding the target."""

    def __init__(self, num_items: int, num_negatives: int = 10,
                 rng: Optional[np.random.Generator] = None):
        if num_items < 2:
            raise ValueError("need at least 2 items to sample negatives")
        self.num_items = num_items
        self.num_negatives = min(num_negatives, num_items - 1)
        self.rng = rng or np.random.default_rng(0)

    def sample(self, target: int) -> np.ndarray:
        """Sample ``num_negatives`` item ids, none equal to ``target``."""
        negatives = self.rng.integers(0, self.num_items, size=self.num_negatives)
        collisions = negatives == target
        while collisions.any():
            negatives[collisions] = self.rng.integers(
                0, self.num_items, size=int(collisions.sum())
            )
            collisions = negatives == target
        return negatives

    def grow(self, num_items: int) -> None:
        """Widen the catalog (mid-stream item cold start); never shrinks.

        ``num_negatives`` stays at its constructed value — it was only
        clamped when the original catalog was too small to honor it, and
        re-raising it mid-stream would change the loss scale across a
        growth boundary.
        """
        if num_items > self.num_items:
            self.num_items = int(num_items)

    def sample_batch(self, targets) -> np.ndarray:
        """Negatives for many targets in one vectorized draw.

        Returns a ``(len(targets), num_negatives)`` array where row ``i``
        avoids ``targets[i]``; collisions are re-drawn (vectorized) until
        none remain.  Per-row semantics match :meth:`sample`, but one
        flat RNG call replaces ``len(targets)`` sequential calls, so the
        *stream* differs from looping :meth:`sample` — which is why the
        per-user training loop (``users_per_batch=1``, the paper-exact
        configuration) keeps calling :meth:`sample` per target and only
        the micro-batched engine uses this.  Checkpoint/resume stays
        exact in either mode: the sampler's generator state is part of
        :meth:`IncrementalStrategy.random_generators`, and a resumed run
        re-enters the same mode it was saved in.
        """
        targets = np.asarray(targets, dtype=np.int64)
        negatives = self.rng.integers(
            0, self.num_items, size=(targets.shape[0], self.num_negatives)
        )
        collisions = negatives == targets[:, None]
        while collisions.any():
            negatives[collisions] = self.rng.integers(
                0, self.num_items, size=int(collisions.sum())
            )
            collisions = negatives == targets[:, None]
        return negatives


def span_training_examples(
    span: SpanDataset,
    histories: Optional[dict] = None,
    max_targets_per_user: Optional[int] = None,
) -> List[TrainExample]:
    """Build next-item training examples from one span.

    For a user's in-span training items ``[i1 ... in]``, every position
    (starting at the second) becomes a target with all preceding in-span
    items — prepended with the user's carried-over history (``histories``,
    usually the tail of prior spans' items) — as the input sequence.
    """
    examples: List[TrainExample] = []
    for user in span.user_ids():
        data = span.users[user]
        carried = list(histories.get(user, [])) if histories else []
        items = data.train_items
        if not items:
            continue
        positions = range(1, len(items)) if (carried or len(items) > 1) else range(0)
        user_examples: List[TrainExample] = []
        if carried:
            # the first in-span item is also predictable from carried history
            user_examples.append(TrainExample(user, list(carried), items[0]))
        for pos in range(1, len(items)):
            history = carried + items[:pos]
            user_examples.append(TrainExample(user, history, items[pos]))
        if max_targets_per_user is not None and len(user_examples) > max_targets_per_user:
            user_examples = user_examples[-max_targets_per_user:]
        examples.extend(user_examples)
    return examples


def iterate_minibatches(
    examples: Sequence[TrainExample],
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = True,
) -> Iterator[List[TrainExample]]:
    """Yield shuffled mini-batches of examples."""
    order = np.arange(len(examples))
    if shuffle:
        (rng or np.random.default_rng(0)).shuffle(order)
    for start in range(0, len(order), batch_size):
        yield [examples[i] for i in order[start:start + batch_size]]
