"""Loaders for the paper's real dataset formats.

The evaluation in this repository runs on the synthetic interest world
(no network access in the authoring environment), but the paper's
datasets are public; when you have them on disk these loaders produce
the same :class:`Interaction` stream the rest of the pipeline consumes:

* **Amazon review ratings** (``ratings_<Category>.csv``, per
  jmcauley.ucsd.edu/data/amazon): ``user,item,rating,timestamp`` rows.
* **Taobao UserBehavior** (``UserBehavior.csv``, tianchi dataset 649):
  ``user,item,category,behavior,timestamp`` rows; the paper uses click
  ("pv") behaviors only.

Both loaders re-index users and items to dense contiguous ids and apply
the paper's ≥30-interactions user filter.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .schema import Interaction

PathLike = Union[str, Path]


@dataclass
class LoadedDataset:
    """An interaction stream plus its id vocabularies."""

    interactions: List[Interaction]
    user_index: Dict[str, int]
    item_index: Dict[str, int]

    @property
    def num_users(self) -> int:
        return len(self.user_index)

    @property
    def num_items(self) -> int:
        return len(self.item_index)


def _reindex(
    rows: Iterable[Tuple[str, str, float]],
    min_user_interactions: int,
) -> LoadedDataset:
    """Dense re-indexing + minimum-interaction filtering."""
    buffered: List[Tuple[str, str, float]] = list(rows)
    counts: Dict[str, int] = {}
    for user, _, _ in buffered:
        counts[user] = counts.get(user, 0) + 1
    keep = {u for u, c in counts.items() if c >= min_user_interactions}

    user_index: Dict[str, int] = {}
    item_index: Dict[str, int] = {}
    interactions: List[Interaction] = []
    for user, item, ts in buffered:
        if user not in keep:
            continue
        uid = user_index.setdefault(user, len(user_index))
        iid = item_index.setdefault(item, len(item_index))
        interactions.append(Interaction(uid, iid, ts))
    interactions.sort(key=lambda e: e.timestamp)
    return LoadedDataset(interactions, user_index, item_index)


def load_amazon_ratings(
    path: PathLike,
    min_user_interactions: int = 30,
    max_rows: Optional[int] = None,
) -> LoadedDataset:
    """Parse an Amazon ``ratings_*.csv`` file (user,item,rating,timestamp).

    The rating value is ignored — the paper treats reviews as implicit
    interactions.  Malformed rows are skipped.
    """

    def rows():
        with open(path, newline="") as handle:
            for i, row in enumerate(csv.reader(handle)):
                if max_rows is not None and i >= max_rows:
                    break
                if len(row) < 4:
                    continue
                user, item, _rating, ts = row[0], row[1], row[2], row[3]
                try:
                    timestamp = float(ts)
                except ValueError:
                    continue
                yield user, item, timestamp

    return _reindex(rows(), min_user_interactions)


def load_taobao_userbehavior(
    path: PathLike,
    min_user_interactions: int = 30,
    behaviors: Tuple[str, ...] = ("pv",),
    max_rows: Optional[int] = None,
) -> LoadedDataset:
    """Parse Taobao ``UserBehavior.csv`` (user,item,category,behavior,ts).

    Only rows whose behavior type is in ``behaviors`` are kept — the
    paper uses clicks (``"pv"``) only.
    """

    def rows():
        with open(path, newline="") as handle:
            for i, row in enumerate(csv.reader(handle)):
                if max_rows is not None and i >= max_rows:
                    break
                if len(row) < 5:
                    continue
                user, item, _category, behavior, ts = row[:5]
                if behavior not in behaviors:
                    continue
                try:
                    timestamp = float(ts)
                except ValueError:
                    continue
                yield user, item, timestamp

    return _reindex(rows(), min_user_interactions)
