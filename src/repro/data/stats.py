"""Dataset statistics — regenerates the analog of the paper's Table II."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .schema import TemporalSplit


@dataclass
class DatasetStats:
    """Counts matching the columns of Table II."""

    name: str
    num_users: int
    num_items: int
    pretrain_interactions: int
    span_interactions: List[int]

    @property
    def total_interactions(self) -> int:
        return self.pretrain_interactions + sum(self.span_interactions)

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "dataset": self.name,
            "#users": self.num_users,
            "#items": self.num_items,
            "pre-training": self.pretrain_interactions,
        }
        for idx, count in enumerate(self.span_interactions, start=1):
            row[str(idx)] = count
        return row


def compute_stats(name: str, split: TemporalSplit) -> DatasetStats:
    """Compute Table-II-style statistics for a temporal split."""
    return DatasetStats(
        name=name,
        num_users=split.num_users,
        num_items=split.num_items,
        pretrain_interactions=split.pretrain.num_interactions(),
        span_interactions=[span.num_interactions() for span in split.spans],
    )


def interest_reappearance_rate(world, min_reappearances: int = 3) -> float:
    """Fraction of (user, topic) pairs active in ≥ ``min_reappearances``
    periods after first appearing — the paper cites >80% of interests
    reappearing more than three times, which motivates retaining all
    existing interests."""
    total = 0
    reappearing = 0
    for timeline in world.user_topic_timeline.values():
        seen: Dict[int, int] = {}
        for period_topics in timeline:
            for topic in period_topics:
                seen[topic] = seen.get(topic, 0) + 1
        for count in seen.values():
            total += 1
            if count > min_reappearances:
                reappearing += 1
    return reappearing / total if total else 0.0
