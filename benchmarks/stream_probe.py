#!/usr/bin/env python3
"""Measure the streaming pipeline's throughput and robustness costs.

Usage:  PYTHONPATH=src python benchmarks/stream_probe.py
            [--repeats N] [--out stream.json]

Times the prequential driver (:mod:`repro.stream`) on a small synthetic
world three ways:

* a clean offset-journaled run — **events/sec** (the headline number,
  with a conservative regression floor CI asserts against) and the
  journal's overhead vs an unjournaled run;
* a dirty run under a delivery-fault mix (duplicates + malformed
  events) — the **quarantine rate** and its throughput tax;
* a poisoned run (NaN injected into the parameters mid-stream) — the
  **recovery latency**: wall time of the commit boundary that detects
  the anomaly, rolls back, and the one that retrains the queued events,
  read from the run's own obs trace.

Emits a JSON report that ``benchmarks/summarize.py --stream`` folds
into the markdown summary.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from repro.data import WorldConfig, generate_world, split_time_spans
from repro.experiments import make_strategy
from repro.faults import FaultPlan, active
from repro.incremental import TrainConfig
from repro.obs import read_trace
from repro.stream import StreamConfig, events_from_split, run_stream

PROBE_WORLD = WorldConfig(
    num_users=24,
    num_items=120,
    num_topics=8,
    init_topics_per_user=(2, 3),
    new_topic_rate=0.6,
    num_spans=4,
    pretrain_events_per_user=(16, 24),
    span_events_per_user=(6, 10),
    initial_catalog_fraction=0.8,
    span_activity=0.9,
    seed=11,
)

#: conservative floor (events/sec) the CI job asserts against — the
#: probe world streams at several hundred events/sec on shared runners,
#: so this only trips on a real throughput regression, not noise
EVENTS_PER_SEC_FLOOR = 40.0


def build_split():
    world = generate_world(PROBE_WORLD)
    return split_time_spans(
        world.interactions, num_items=PROBE_WORLD.num_items,
        T=PROBE_WORLD.num_spans, alpha=0.5,
    )


def build_strategy(split):
    config = TrainConfig(epochs_pretrain=2, epochs_incremental=1,
                         num_negatives=4, seed=0)
    return make_strategy(
        "FT", "ComiRec-DR", split, config,
        model_kwargs={"dim": 16, "num_interests": 2},
    )


def timed_run(split, events, config, checkpoint_dir=None, trace_dir=None,
              plan=None):
    """(wall seconds, StreamResult) for one fresh streaming run."""
    strategy = build_strategy(split)
    start = time.perf_counter()
    if plan is not None:
        with active(plan):
            result = run_stream(strategy, events=events, config=config,
                                checkpoint_dir=checkpoint_dir,
                                trace_dir=trace_dir)
    else:
        result = run_stream(strategy, events=events, config=config,
                            checkpoint_dir=checkpoint_dir,
                            trace_dir=trace_dir)
    return time.perf_counter() - start, result


def recovery_latency_s(trace_dir: Path) -> Optional[float]:
    """Wall time of the commit boundaries that degrade and recover.

    The ``stream.degraded`` / ``stream.recovered`` decision events
    attach to their enclosing ``stream.interval`` spans; the summed
    ``dur_s`` of those spans is the full detect → rollback → retrain →
    promote cycle.
    """
    events, _ = read_trace(trace_dir)
    marked_spans = {
        record.get("span")
        for record in events
        if record.get("kind") == "event"
        and record.get("name") in ("stream.degraded", "stream.recovered")
    }
    durations = [
        float(record.get("dur_s", 0.0))
        for record in events
        if record.get("kind") == "span_end" and record.get("id") in marked_spans
    ]
    return round(sum(durations), 6) if durations else None


def measure(repeats: int = 3, workdir: Optional[Path] = None) -> dict:
    split = build_split()
    events = events_from_split(split, seed=0)
    config = StreamConfig(checkpoint_every=64, backoff_base=0.0)

    with tempfile.TemporaryDirectory() as fallback:
        base = Path(workdir) if workdir is not None else Path(fallback)

        plain_s = min(timed_run(split, events, config)[0]
                      for _ in range(max(1, repeats)))
        journaled_times: List[float] = []
        for i in range(max(1, repeats)):
            wall, clean = timed_run(split, events, config,
                                    checkpoint_dir=base / f"clean-{i}")
            journaled_times.append(wall)
        journaled_s = min(journaled_times)
        events_per_sec = len(events) / journaled_s

        # delivery-fault mix: a duplicate and a malformed event every
        # ~20 source events
        dirty_plan = FaultPlan()
        for nth in range(5, len(events), 20):
            dirty_plan.duplicate_event(nth)
            dirty_plan.malform_event(nth + 10, fld="item")
        dirty_s, dirty = timed_run(split, events, config,
                                   checkpoint_dir=base / "dirty",
                                   plan=dirty_plan)

        poison_plan = FaultPlan().poison_params_after_event(
            events[len(events) // 2].seq)
        _, poisoned = timed_run(split, events, config,
                                checkpoint_dir=base / "poisoned",
                                trace_dir=base / "poisoned-trace",
                                plan=poison_plan)

        return {
            "version": 1,
            "tool": "repro.stream",
            "world": {"users": PROBE_WORLD.num_users,
                      "items": PROBE_WORLD.num_items,
                      "events": len(events)},
            "throughput": {
                "events_per_sec": round(events_per_sec, 1),
                "events_per_sec_floor": EVENTS_PER_SEC_FLOOR,
                "plain_s": round(plain_s, 4),
                "journaled_s": round(journaled_s, 4),
                "journal_overhead_pct": round(
                    100.0 * (journaled_s - plain_s) / plain_s, 1),
                "intervals_committed": len(clean.intervals),
            },
            "quarantine": {
                "injected_faults": len(dirty_plan.faults),
                "quarantined": dict(dirty.quarantined),
                "quarantine_rate": round(
                    dirty.quarantined_total / dirty.scored, 4)
                    if dirty.scored else None,
                "dirty_run_s": round(dirty_s, 4),
            },
            "recovery": {
                "degraded_spells": poisoned.degraded_spells,
                "recoveries": poisoned.recoveries,
                "recovery_latency_s": recovery_latency_s(
                    base / "poisoned-trace"),
                "final_mode": poisoned.mode,
            },
        }


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per timing (default 3)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the JSON report here (default stdout)")
    args = parser.parse_args(argv[1:])
    report = measure(repeats=args.repeats)
    blob = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(blob + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(blob)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
