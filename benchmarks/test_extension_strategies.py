"""Extension experiments beyond the paper's tables.

1. **EWC baseline** — the paper's related work argues regularization-based
   incremental learning is of limited use for MSR because it constrains
   parameters (not user interests) and cannot grow the interest count.
   We run EWC head-to-head: it should land near FT and below IMSR.
2. **IMSR + replay** — combining the paper's method with ADER-style
   exemplar replay; reported as an open question ("does replay still add
   anything once retention + expansion are in place?").
"""

from conftest import bench_config, bench_repeats, bench_scale, report

from repro.data import load_dataset
from repro.experiments import format_table, run_repeated, shape_check


def test_extension_strategies(run_once):
    def build():
        _, split = load_dataset("taobao", scale=bench_scale())
        config = bench_config()
        out = {}
        for name in ("FT", "EWC", "IMSR", "IMSR+Replay", "FR"):
            out[name] = run_repeated("taobao", "ComiRec-DR", name, split,
                                     config=config, repeats=bench_repeats())
        return out

    results = run_once(build)
    rows = [
        {"strategy": name, "HR": res.avg.hr, "NDCG": res.avg.ndcg,
         "mean_K_final": res.interest_counts[-1]}
        for name, res in results.items()
    ]
    mean = lambda r: 0.5 * (r.avg.hr + r.avg.ndcg)
    checks = [
        shape_check(
            "EWC lands between FT and FR (regularization helps a little)",
            mean(results["FR"]) >= mean(results["EWC"]) >= mean(results["FT"]) - 0.01),
        shape_check(
            "IMSR beats EWC (expansion + representation-level retention "
            "beat parameter-level regularization)",
            mean(results["IMSR"]) > mean(results["EWC"])),
        shape_check(
            "EWC cannot grow the interest count",
            results["EWC"].interest_counts[-1] == results["FT"].interest_counts[-1]),
        shape_check(
            "IMSR+Replay is at least IMSR-level (replay does not hurt)",
            mean(results["IMSR+Replay"]) >= mean(results["IMSR"]) - 0.005),
    ]
    report("Extensions: EWC baseline and IMSR+Replay (Taobao, ComiRec-DR)",
           format_table(rows), checks)
