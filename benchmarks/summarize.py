#!/usr/bin/env python3
"""Summarize a benchmark run's shape checks into a markdown table.

Usage:  python benchmarks/summarize.py bench_output.txt [--lint lint.json]

Parses the ``===== <title> =====`` sections and the ``N/M shape checks
hold`` lines the bench harness prints, and emits the markdown summary
that EXPERIMENTS.md embeds.  With ``--lint``, the JSON report from
``python -m repro.analysis src --format json`` is appended as an extra
row so lint counts are tracked next to the reproduction metrics.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path
from typing import List, Optional, Tuple


def parse_sections(text: str) -> List[Tuple[str, int, int]]:
    """Return (section title, checks passed, checks total) triples."""
    sections: List[Tuple[str, int, int]] = []
    title = None
    for line in text.splitlines():
        header = re.match(r"^=====\s+(.*?)\s+=====$", line)
        if header:
            title = header.group(1)
            continue
        tally = re.match(r"^(\d+)/(\d+) shape checks hold$", line.strip())
        if tally and title is not None:
            sections.append((title, int(tally.group(1)), int(tally.group(2))))
            title = None
    return sections


def parse_lint(text: str) -> Tuple[str, str]:
    """Turn a ``repro.analysis --format json`` report into a table row."""
    payload = json.loads(text)
    summary = payload.get("summary", {})
    findings = int(summary.get("findings", 0))
    parse_errors = int(summary.get("parse_errors", 0))
    files = int(summary.get("files_scanned", 0))
    if findings == 0 and parse_errors == 0:
        return ("static analysis", f"clean ({files} files)")
    by_rule = summary.get("by_rule", {})
    detail = ", ".join(f"{rid}×{n}" for rid, n in sorted(by_rule.items()))
    cell = f"{findings + parse_errors} finding(s)"
    if detail:
        cell += f" [{detail}]"
    return ("static analysis", cell)


def to_markdown(sections: List[Tuple[str, int, int]],
                lint: Optional[Tuple[str, str]] = None) -> str:
    lines = ["| experiment | shape checks |", "|---|---|"]
    passed_total = checks_total = 0
    for title, passed, total in sections:
        lines.append(f"| {title} | {passed}/{total} |")
        passed_total += passed
        checks_total += total
    lines.append(f"| **overall** | **{passed_total}/{checks_total}** |")
    if lint is not None:
        lines.append(f"| {lint[0]} | {lint[1]} |")
    return "\n".join(lines)


def main(argv: List[str]) -> int:
    args = list(argv[1:])
    lint_path = None
    if "--lint" in args:
        at = args.index("--lint")
        try:
            lint_path = args[at + 1]
        except IndexError:
            print(__doc__)
            return 2
        del args[at:at + 2]
    if len(args) != 1:
        print(__doc__)
        return 2
    text = Path(args[0]).read_text()
    sections = parse_sections(text)
    if not sections:
        print("no shape-check sections found", file=sys.stderr)
        return 1
    lint = None
    if lint_path is not None:
        try:
            lint = parse_lint(Path(lint_path).read_text())
        except (OSError, ValueError) as exc:
            print(f"error: could not read lint report {lint_path}: {exc}",
                  file=sys.stderr)
            return 2
    print(to_markdown(sections, lint=lint))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
