#!/usr/bin/env python3
"""Summarize a benchmark run's shape checks into a markdown table.

Usage:  python benchmarks/summarize.py bench_output.txt
            [--lint lint.json] [--contracts src]
            [--robustness robustness.json] [--perf BENCH_perf.json]
            [--obs BENCH_obs.json] [--sanitize BENCH_sanitize.json]
            [--stream BENCH_stream.json]

Regression mode::

    python benchmarks/summarize.py --regress BENCH_perf.json \
        --history BENCH_history.jsonl [--slack F]

compares the current ``perf_probe.py`` report against the tracked
perf-trajectory history (one flattened-metrics JSON line per past run,
appended by ``perf_probe.py --history``).  Every metric with at least
three history points gets a noise-aware threshold — four robust MADs
relative to the median, clamped to [10%, 18%], times ``--slack`` —
and the step exits 1 when any wall-clock metric (``*_s``) lands above
it or any speedup floor (``*_speedup``) lands below it.  A 20% slowdown
therefore always fails at the default slack while run-to-run jitter
passes.

Parses the ``===== <title> =====`` sections and the ``N/M shape checks
hold`` lines the bench harness prints, and emits the markdown summary
that EXPERIMENTS.md embeds.  With ``--lint``, the JSON report from
``python -m repro.analysis src --format json`` is appended as an extra
row so lint counts are tracked next to the reproduction metrics; with
``--contracts``, per-package shape-contract coverage (decorated public
functions / total public functions) is appended as well; with
``--robustness``, the checkpoint/resume latency report emitted by
``benchmarks/robustness_probe.py`` is folded in as a row group; with
``--perf``, the batched-engine speedups emitted by
``benchmarks/perf_probe.py`` are folded in the same way; with
``--obs``, the instrumentation-overhead report emitted by
``benchmarks/obs_probe.py`` is folded in as well; with ``--sanitize``,
the write-guard overhead report emitted by
``benchmarks/sanitize_probe.py`` is folded in alongside it; with
``--stream``, the streaming-pipeline throughput/quarantine/recovery
report emitted by ``benchmarks/stream_probe.py`` is folded in too —
and the events/sec regression floor embedded in that report is
asserted, so a throughput regression fails the summary step.
"""

from __future__ import annotations

import ast
import json
import re
import sys
from pathlib import Path
from typing import List, Optional, Tuple


def parse_sections(text: str) -> List[Tuple[str, int, int]]:
    """Return (section title, checks passed, checks total) triples."""
    sections: List[Tuple[str, int, int]] = []
    title = None
    for line in text.splitlines():
        header = re.match(r"^=====\s+(.*?)\s+=====$", line)
        if header:
            title = header.group(1)
            continue
        tally = re.match(r"^(\d+)/(\d+) shape checks hold$", line.strip())
        if tally and title is not None:
            sections.append((title, int(tally.group(1)), int(tally.group(2))))
            title = None
    return sections


def _rule_family_counts(by_rule: dict) -> dict:
    """Roll finding counts up into rule families (RA1xx, RA6xx, ...)."""
    families: dict = {}
    for rid, n in by_rule.items():
        family = rid[:3] + "xx" if re.match(r"^RA\d{3}$", rid) else rid
        families[family] = families.get(family, 0) + int(n)
    return families


def parse_lint(text: str) -> Tuple[str, str]:
    """Turn a ``repro.analysis --format json`` report into a table row.

    Aliasing (RA6xx), determinism (RA7xx), and interprocedural (RA8xx)
    counts are always shown — zero included — so the summary records
    that those families ran.
    """
    payload = json.loads(text)
    summary = payload.get("summary", {})
    findings = int(summary.get("findings", 0))
    parse_errors = int(summary.get("parse_errors", 0))
    files = int(summary.get("files_scanned", 0))
    families = _rule_family_counts(summary.get("by_rule", {}))
    tracked = ", ".join(
        f"{fam} {families.get(fam, 0)}" for fam in ("RA6xx", "RA7xx", "RA8xx"))
    if findings == 0 and parse_errors == 0:
        return ("static analysis", f"clean ({files} files; {tracked})")
    by_rule = summary.get("by_rule", {})
    detail = ", ".join(f"{rid}×{n}" for rid, n in sorted(by_rule.items()))
    cell = f"{findings + parse_errors} finding(s)"
    if detail:
        cell += f" [{detail}]"
    return ("static analysis", f"{cell} ({tracked})")


def _is_contract_decorator(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None)
    return name == "shape_contract"


def contract_coverage(src_root: Path) -> List[Tuple[str, int, int]]:
    """Per-package (package, annotated, public-function total) triples.

    Counts module- and class-level ``def``s whose names are public (no
    leading underscore); a function counts as annotated when it carries
    a ``@shape_contract(...)`` decorator.  Packages are the direct
    subpackages of ``repro`` (top-level modules roll up under ``repro``).
    """
    repro = src_root / "repro"
    tallies: dict[str, List[int]] = {}
    for path in sorted(repro.rglob("*.py")):
        rel = path.relative_to(repro)
        package = ("repro." + rel.parts[0]
                   if len(rel.parts) > 1 else "repro")
        try:
            tree = ast.parse(path.read_text())
        except SyntaxError:
            continue
        counts = tallies.setdefault(package, [0, 0])
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            counts[1] += 1
            if any(_is_contract_decorator(d) for d in node.decorator_list):
                counts[0] += 1
    return [(pkg, annotated, total)
            for pkg, (annotated, total) in sorted(tallies.items())]


def parse_robustness(text: str) -> List[Tuple[str, str]]:
    """Turn a ``robustness_probe.py`` JSON report into table rows."""
    payload = json.loads(text)
    if payload.get("tool") != "repro.robustness":
        raise ValueError(
            f"not a robustness report (tool={payload.get('tool')!r})")
    ckpt = payload.get("checkpoint", {})
    run = payload.get("run", {})
    rows = [
        ("checkpoint save",
         f"{ckpt.get('save_ms', 0):.1f} ms "
         f"({ckpt.get('size_bytes', 0) / 1024:.0f} KiB, "
         f"{ckpt.get('arrays', 0)} arrays)"),
        ("checkpoint verify", f"{ckpt.get('verify_ms', 0):.1f} ms"),
        ("checkpoint load", f"{ckpt.get('load_ms', 0):.1f} ms"),
        ("journaled-run overhead",
         f"{run.get('journal_overhead_pct', 0):+.1f}% wall clock"),
        ("resume speedup",
         f"{run.get('resume_speedup', 0):.1f}x "
         f"({run.get('resumed_spans', 0)} spans reused)"),
    ]
    return rows


def parse_perf(text: str) -> List[Tuple[str, str]]:
    """Turn a ``perf_probe.py`` JSON report into table rows."""
    payload = json.loads(text)
    if payload.get("tool") != "repro.perf":
        raise ValueError(
            f"not a perf report (tool={payload.get('tool')!r})")
    upb = payload.get("users_per_batch", "?")
    rows: List[Tuple[str, str]] = []
    for scale, entry in payload.get("scales", {}).items():
        world = entry.get("world", {})
        cells = []
        for layer in ("train", "extract", "eval"):
            section = entry.get(layer, {})
            cells.append(f"{layer} x{section.get('speedup', 0)}")
        rows.append((
            f"{scale} ({world.get('users', '?')}u/"
            f"{world.get('items', '?')}i, B={upb})",
            "  ".join(cells),
        ))
        backend = entry.get("backend")
        if backend:
            # speedups here are measured against the *batched default*
            # path above, not the per-user baseline
            rows.append((
                f"{scale} [{backend.get('name', '?')} backend]",
                f"train x{backend.get('train_speedup', 0)}  "
                f"extract x{backend.get('extract_speedup', 0)}  "
                f"eval x{backend.get('eval_speedup', 0)}  "
                f"hr_drift {backend.get('hr_drift', 0)}",
            ))
    return rows


def parse_obs(text: str) -> List[Tuple[str, str]]:
    """Turn an ``obs_probe.py`` JSON report into table rows."""
    payload = json.loads(text)
    if payload.get("tool") != "repro.obs":
        raise ValueError(
            f"not an obs report (tool={payload.get('tool')!r})")
    rows = [
        ("disabled probes",
         f"{payload.get('disabled_probe_ns', 0):.0f} ns/call, "
         f"{payload.get('disabled_overhead_pct', 0):.3f}% of run "
         f"(budget {payload.get('budget_pct', 0):.0f}%)"),
        ("traced run",
         f"{payload.get('traced_overhead_pct', 0):+.1f}% wall clock "
         f"({payload.get('events_written', 0)} events, "
         f"{payload.get('metric_updates', 0)} metric updates)"),
    ]
    if "prof_disabled_overhead_pct" in payload:
        rows.append((
            "disabled profiler",
            f"scope {payload.get('prof_scope_ns', 0):.0f} ns × "
            f"{payload.get('prof_scope_fires', 0)}, check "
            f"{payload.get('prof_check_ns', 0):.0f} ns × "
            f"{payload.get('prof_check_fires', 0)} = "
            f"{payload.get('prof_disabled_overhead_pct', 0):.3f}% of run "
            f"(budget {payload.get('budget_pct', 0):.0f}%)"))
    return rows


def parse_sanitize(text: str) -> List[Tuple[str, str]]:
    """Turn a ``sanitize_probe.py`` JSON report into table rows."""
    payload = json.loads(text)
    if payload.get("tool") != "repro.sanitize":
        raise ValueError(
            f"not a sanitize report (tool={payload.get('tool')!r})")
    rows = [
        ("disabled guards",
         f"capture {payload.get('capture_ns', 0):.0f} ns × "
         f"{payload.get('capture_calls', 0)}, flag "
         f"{payload.get('flag_test_ns', 0):.0f} ns × "
         f"{payload.get('graph_builds', 0)} = "
         f"{payload.get('disabled_overhead_pct', 0):.3f}% of run "
         f"(budget {payload.get('budget_pct', 0):.0f}%)"),
        ("enforced run",
         f"{payload.get('enforced_overhead_pct', 0):+.1f}% wall clock"),
    ]
    return rows


def parse_stream(text: str) -> List[Tuple[str, str]]:
    """Turn a ``stream_probe.py`` JSON report into table rows.

    Also enforces the report's embedded events/sec regression floor —
    a report below its own floor raises, failing the summary step.
    """
    payload = json.loads(text)
    if payload.get("tool") != "repro.stream":
        raise ValueError(
            f"not a stream report (tool={payload.get('tool')!r})")
    throughput = payload.get("throughput", {})
    quarantine = payload.get("quarantine", {})
    recovery = payload.get("recovery", {})
    eps = float(throughput.get("events_per_sec", 0.0))
    floor = float(throughput.get("events_per_sec_floor", 0.0))
    if eps < floor:
        raise ValueError(
            f"stream throughput regression: {eps} events/sec is below "
            f"the {floor} floor")
    reasons = quarantine.get("quarantined", {})
    per_reason = ", ".join(f"{reason}={count}"
                           for reason, count in sorted(reasons.items()))
    rate = quarantine.get("quarantine_rate")
    latency = recovery.get("recovery_latency_s")
    rows = [
        ("throughput",
         f"{eps:.0f} events/sec (floor {floor:.0f}), journal "
         f"{throughput.get('journal_overhead_pct', 0):+.1f}%, "
         f"{throughput.get('intervals_committed', 0)} intervals"),
        ("quarantine",
         f"rate {rate:.1%} under fault mix ({per_reason})"
         if rate is not None else "no faults injected"),
        ("recovery",
         f"{latency * 1000:.0f} ms degrade->recover "
         f"({recovery.get('degraded_spells', 0)} spell(s), final mode "
         f"{recovery.get('final_mode', '?')})"
         if latency is not None else "no degradation observed"),
    ]
    return rows


def flatten_perf_metrics(report: dict) -> dict:
    """Flatten a ``perf_probe.py`` report into regression-trackable scalars.

    Naming carries the comparison direction: ``*_s`` metrics are wall
    times (regress when they grow), ``*_speedup`` metrics are ratios
    that must not shrink.  Only finite, positive values are kept — a
    degenerate timing must not poison the history.
    """
    if report.get("tool") != "repro.perf":
        raise ValueError(
            f"not a perf report (tool={report.get('tool')!r})")
    flat: dict = {}
    for scale, entry in report.get("scales", {}).items():
        for layer in ("train", "extract", "eval"):
            section = entry.get(layer, {})
            flat[f"{scale}.{layer}_s"] = section.get("batched_s")
            flat[f"{scale}.{layer}_speedup"] = section.get("speedup")
        backend = entry.get("backend", {})
        for layer in ("train", "extract", "eval"):
            flat[f"{scale}.backend_{layer}_s"] = backend.get(f"{layer}_s")
            flat[f"{scale}.backend_{layer}_speedup"] = backend.get(
                f"{layer}_speedup")
    return {
        name: float(value) for name, value in flat.items()
        if isinstance(value, (int, float)) and value > 0.0
        and value == value and value not in (float("inf"), float("-inf"))
    }


def read_history(path: Path) -> List[dict]:
    """Parse a BENCH_history.jsonl file into metric dicts (torn-line
    tolerant, like the trace reader)."""
    entries: List[dict] = []
    if not path.exists():
        return entries
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and isinstance(
                record.get("metrics"), dict):
            entries.append(record)
    return entries


#: regression-threshold clamp: never tighter than 10% (timer jitter on
#: shared CI runners) and never looser than 18% (so an injected 20%
#: slowdown always fails at slack 1.0)
THRESHOLD_FLOOR = 0.10
THRESHOLD_CEIL = 0.18
#: history points required before a metric is gated
MIN_HISTORY = 3


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def regression_check(current: dict, history: List[dict],
                     slack: float = 1.0) -> Tuple[List[dict], List[dict]]:
    """Compare current metrics against history; returns (rows, failures).

    Per metric: the historical median is the reference, and the relative
    threshold is ``clamp(4 * MAD/median, floor, ceil) * slack`` — wide
    when past runs were noisy, but bounded so real regressions cannot
    hide.  ``*_s`` metrics fail above ``median * (1 + thr)``; every
    other metric (``*_speedup``) fails below ``median * (1 - thr)``.
    """
    rows: List[dict] = []
    failures: List[dict] = []
    series: dict = {}
    for entry in history:
        for name, value in entry["metrics"].items():
            if isinstance(value, (int, float)) and value > 0:
                series.setdefault(name, []).append(float(value))
    for name in sorted(current):
        values = series.get(name, [])
        if len(values) < MIN_HISTORY:
            rows.append({"metric": name, "value": current[name],
                         "status": f"skipped ({len(values)} history "
                                   f"point(s), need {MIN_HISTORY})"})
            continue
        median = _median(values)
        mad = _median([abs(v - median) for v in values])
        rel = (4.0 * mad / median) if median > 0 else THRESHOLD_CEIL
        threshold = min(THRESHOLD_CEIL, max(THRESHOLD_FLOOR, rel)) * slack
        value = float(current[name])
        if name.endswith("_s"):
            limit = median * (1.0 + threshold)
            failed = value > limit
            direction = "<="
        else:
            limit = median * (1.0 - threshold)
            failed = value < limit
            direction = ">="
        row = {
            "metric": name, "value": value, "median": median,
            "threshold_pct": round(100.0 * threshold, 1),
            "limit": round(limit, 6), "n_history": len(values),
            "status": "FAIL" if failed else "ok",
            "direction": direction,
        }
        rows.append(row)
        if failed:
            failures.append(row)
    return rows, failures


def run_regression(current_path: Path, history_path: Path,
                   slack: float) -> int:
    """``--regress`` entry point: gate the current perf report."""
    try:
        current = flatten_perf_metrics(
            json.loads(current_path.read_text()))
    except (OSError, ValueError) as exc:
        print(f"error: could not read perf report {current_path}: {exc}",
              file=sys.stderr)
        return 2
    history = read_history(history_path)
    if not history:
        print(f"error: no usable history in {history_path}; seed it with "
              f"`perf_probe.py --history {history_path}`", file=sys.stderr)
        return 2
    rows, failures = regression_check(current, history, slack=slack)
    gated = [r for r in rows if "median" in r]
    print(f"perf regression gate: {len(gated)} metric(s) gated against "
          f"{len(history)} history run(s), slack x{slack:g}")
    for row in rows:
        if "median" not in row:
            print(f"  {row['metric']:<32} {row['value']:<10g} "
                  f"{row['status']}")
            continue
        print(f"  {row['metric']:<32} {row['value']:<10g} "
              f"{row['direction']} {row['limit']:<10g} "
              f"(median {row['median']:g} ±{row['threshold_pct']}%) "
              f"{row['status']}")
    if failures:
        print(f"FAIL: {len(failures)} metric(s) regressed beyond the "
              f"noise-aware threshold", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


def to_markdown(sections: List[Tuple[str, int, int]],
                lint: Optional[Tuple[str, str]] = None,
                coverage: Optional[List[Tuple[str, int, int]]] = None,
                robustness: Optional[List[Tuple[str, str]]] = None,
                perf: Optional[List[Tuple[str, str]]] = None,
                obs: Optional[List[Tuple[str, str]]] = None,
                sanitize: Optional[List[Tuple[str, str]]] = None,
                stream: Optional[List[Tuple[str, str]]] = None) -> str:
    lines = ["| experiment | shape checks |", "|---|---|"]
    passed_total = checks_total = 0
    for title, passed, total in sections:
        lines.append(f"| {title} | {passed}/{total} |")
        passed_total += passed
        checks_total += total
    lines.append(f"| **overall** | **{passed_total}/{checks_total}** |")
    if lint is not None:
        lines.append(f"| {lint[0]} | {lint[1]} |")
    if coverage:
        annotated_total = fn_total = 0
        for pkg, annotated, total in coverage:
            lines.append(
                f"| contracts: {pkg} | {annotated}/{total} annotated |")
            annotated_total += annotated
            fn_total += total
        lines.append(f"| **contracts overall** | "
                     f"**{annotated_total}/{fn_total} annotated** |")
    if robustness:
        for label, cell in robustness:
            lines.append(f"| robustness: {label} | {cell} |")
    if perf:
        for label, cell in perf:
            lines.append(f"| perf: {label} | {cell} |")
    if obs:
        for label, cell in obs:
            lines.append(f"| obs: {label} | {cell} |")
    if sanitize:
        for label, cell in sanitize:
            lines.append(f"| sanitize: {label} | {cell} |")
    if stream:
        for label, cell in stream:
            lines.append(f"| stream: {label} | {cell} |")
    return "\n".join(lines)


def _take_flag(args: List[str], flag: str) -> Optional[str]:
    """Pop ``flag VALUE`` from args; return VALUE, None, or '' if dangling."""
    if flag not in args:
        return None
    at = args.index(flag)
    try:
        value = args[at + 1]
    except IndexError:
        return ""
    del args[at:at + 2]
    return value


def main(argv: List[str]) -> int:
    args = list(argv[1:])
    regress_path = _take_flag(args, "--regress")
    history_path = _take_flag(args, "--history")
    slack_value = _take_flag(args, "--slack")
    if regress_path is not None:
        if regress_path == "" or history_path in (None, "") or args:
            print(__doc__)
            return 2
        try:
            slack = float(slack_value) if slack_value else 1.0
        except ValueError:
            print(f"error: bad --slack value {slack_value!r}",
                  file=sys.stderr)
            return 2
        return run_regression(Path(regress_path), Path(history_path),
                              slack=slack)
    if history_path is not None or slack_value is not None:
        print("error: --history/--slack only apply with --regress",
              file=sys.stderr)
        return 2
    lint_path = _take_flag(args, "--lint")
    contracts_root = _take_flag(args, "--contracts")
    robustness_path = _take_flag(args, "--robustness")
    perf_path = _take_flag(args, "--perf")
    obs_path = _take_flag(args, "--obs")
    sanitize_path = _take_flag(args, "--sanitize")
    stream_path = _take_flag(args, "--stream")
    if (lint_path == "" or contracts_root == "" or robustness_path == ""
            or perf_path == "" or obs_path == "" or sanitize_path == ""
            or stream_path == "" or len(args) != 1):
        print(__doc__)
        return 2
    text = Path(args[0]).read_text()
    sections = parse_sections(text)
    if not sections:
        print("no shape-check sections found", file=sys.stderr)
        return 1
    lint = None
    if lint_path is not None:
        try:
            lint = parse_lint(Path(lint_path).read_text())
        except (OSError, ValueError) as exc:
            print(f"error: could not read lint report {lint_path}: {exc}",
                  file=sys.stderr)
            return 2
    coverage = None
    if contracts_root is not None:
        root = Path(contracts_root)
        if not (root / "repro").is_dir():
            print(f"error: {root} has no repro/ package", file=sys.stderr)
            return 2
        coverage = contract_coverage(root)
    robustness = None
    if robustness_path is not None:
        try:
            robustness = parse_robustness(Path(robustness_path).read_text())
        except (OSError, ValueError) as exc:
            print(f"error: could not read robustness report "
                  f"{robustness_path}: {exc}", file=sys.stderr)
            return 2
    perf = None
    if perf_path is not None:
        try:
            perf = parse_perf(Path(perf_path).read_text())
        except (OSError, ValueError) as exc:
            print(f"error: could not read perf report {perf_path}: {exc}",
                  file=sys.stderr)
            return 2
    obs = None
    if obs_path is not None:
        try:
            obs = parse_obs(Path(obs_path).read_text())
        except (OSError, ValueError) as exc:
            print(f"error: could not read obs report {obs_path}: {exc}",
                  file=sys.stderr)
            return 2
    sanitize = None
    if sanitize_path is not None:
        try:
            sanitize = parse_sanitize(Path(sanitize_path).read_text())
        except (OSError, ValueError) as exc:
            print(f"error: could not read sanitize report "
                  f"{sanitize_path}: {exc}", file=sys.stderr)
            return 2
    stream = None
    if stream_path is not None:
        try:
            stream = parse_stream(Path(stream_path).read_text())
        except (OSError, ValueError) as exc:
            print(f"error: could not read stream report "
                  f"{stream_path}: {exc}", file=sys.stderr)
            return 2
    print(to_markdown(sections, lint=lint, coverage=coverage,
                      robustness=robustness, perf=perf, obs=obs,
                      sanitize=sanitize, stream=stream))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
