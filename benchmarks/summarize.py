#!/usr/bin/env python3
"""Summarize a benchmark run's shape checks into a markdown table.

Usage:  python benchmarks/summarize.py bench_output.txt

Parses the ``===== <title> =====`` sections and the ``N/M shape checks
hold`` lines the bench harness prints, and emits the markdown summary
that EXPERIMENTS.md embeds.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple


def parse_sections(text: str) -> List[Tuple[str, int, int]]:
    """Return (section title, checks passed, checks total) triples."""
    sections: List[Tuple[str, int, int]] = []
    title = None
    for line in text.splitlines():
        header = re.match(r"^=====\s+(.*?)\s+=====$", line)
        if header:
            title = header.group(1)
            continue
        tally = re.match(r"^(\d+)/(\d+) shape checks hold$", line.strip())
        if tally and title is not None:
            sections.append((title, int(tally.group(1)), int(tally.group(2))))
            title = None
    return sections


def to_markdown(sections: List[Tuple[str, int, int]]) -> str:
    lines = ["| experiment | shape checks |", "|---|---|"]
    passed_total = checks_total = 0
    for title, passed, total in sections:
        lines.append(f"| {title} | {passed}/{total} |")
        passed_total += passed
        checks_total += total
    lines.append(f"| **overall** | **{passed_total}/{checks_total}** |")
    return "\n".join(lines)


def main(argv: List[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    text = Path(argv[1]).read_text()
    sections = parse_sections(text)
    if not sections:
        print("no shape-check sections found", file=sys.stderr)
        return 1
    print(to_markdown(sections))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
