"""Table V — training time per span and inference time on Taobao.

Absolute seconds are hardware- and scale-specific; the reproduced shape
is the *relative* structure: FR slowest and growing, ADER growing,
FT/SML/IMSR flat, IMSR within a few percent of FT.
"""

from conftest import bench_config, bench_scale, report

from repro.experiments import run_table5


def test_table5_speed(run_once):
    result = run_once(
        run_table5,
        models=("MIND", "ComiRec-DR", "ComiRec-SA"),
        scale=bench_scale(),
        config=bench_config(),
    )
    checks = []
    for model in ("MIND", "ComiRec-DR", "ComiRec-SA"):
        checks.extend(result.shape_checks(model=model))
    report("Table V: training/inference time (Taobao preset)",
           result.format(), checks)

    dr = {(m, s): r for (m, s), r in result.runs.items() if m == "ComiRec-DR"}
    fr_times = [t for k, t in dr[("ComiRec-DR", "FR")].train_times.items() if k > 0]
    ft_times = [t for k, t in dr[("ComiRec-DR", "FT")].train_times.items() if k > 0]
    assert sum(fr_times) > sum(ft_times)
