"""Figure 6 — hyperparameter sensitivity (c1, c2, K, deltaK)."""

from conftest import bench_config, bench_repeats, bench_scale, report

from repro.experiments import run_fig6


def test_fig6_sensitivity(run_once):
    result = run_once(run_fig6, scale=bench_scale(), config=bench_config(),
                      repeats=bench_repeats())
    report("Figure 6: sensitivity sweeps", result.format(),
           result.shape_checks())
    for sweep, values in result.sweeps.items():
        assert all(0.0 <= hr <= 1.0 for hr in values.values())
