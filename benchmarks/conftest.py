"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints (a) the measured numbers next to the paper's, and (b) the shape
checks that encode the paper's qualitative claims.  Absolute values are
not expected to match (our substrate is a synthetic world on a numpy
engine); the shapes are the reproduction target — see EXPERIMENTS.md.

Environment knobs for quicker local iterations:

* ``REPRO_BENCH_SCALE``   — world-size multiplier (default 1.0)
* ``REPRO_BENCH_EPOCHS``  — pretraining epochs (default 10; incremental
  epochs scale as 40% of this, min 2)
* ``REPRO_BENCH_REPEATS`` — training seeds averaged per run where the
  driver supports it (default 2; the paper averages 10)
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import default_config, render_shape_checks


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_repeats() -> int:
    return int(os.environ.get("REPRO_BENCH_REPEATS", "2"))


def bench_config(seed: int = 0):
    pretrain = int(os.environ.get("REPRO_BENCH_EPOCHS", "10"))
    incremental = max(2, int(round(pretrain * 0.4)))
    return default_config(
        epochs_pretrain=pretrain,
        epochs_incremental=incremental,
        seed=seed,
    )


def report(title: str, body: str, checks=None) -> None:
    print(f"\n===== {title} =====")
    print(body)
    if checks is not None:
        print(render_shape_checks(checks))


@pytest.fixture()
def run_once(benchmark):
    """Run an expensive experiment exactly once under pytest-benchmark."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
