#!/usr/bin/env python3
"""Measure the batched execution engine against the per-user baselines.

Usage:  PYTHONPATH=src python benchmarks/perf_probe.py
            [--repeats N] [--out BENCH_perf.json]
            [--users-per-batch B] [--scales small,large,xlarge]

Times the three batched layers this repo ships against their per-user
counterparts, at three world scales:

* **train** — one epoch of the shared training loop, per-user
  (``users_per_batch=1``, the paper-exact path) vs micro-batched
  (one padded autograd forward + one optimizer step per user group);
* **extract** — differentiable interest extraction, per-user
  ``compute_interests`` vs :func:`repro.models.batched_compute_interests`;
* **eval** — span evaluation, the historical per-item loop
  (``rank_of_target`` per test item) vs the vectorized evaluator
  (``evaluate_span`` with ``batch_score_fn`` + ``ranks_of_targets``),
  plus the stacked-GEMM scoring mode as extra headroom.

Each scale also carries a **backend** section: the same batched train /
extract / eval spans re-run under the opt-in ``fast`` compute backend
(float32 + pooled scratch + fused kernels), with speedups measured
against the default-backend batched path and the HR/NDCG drift against
the default-backend metrics recorded alongside.

Emits a JSON report (``BENCH_perf.json`` in CI) that
``benchmarks/summarize.py --perf`` folds into the markdown summary, so
speedups are tracked next to the reproduction metrics and CI can assert
they do not regress.

``--history FILE`` additionally appends this run's flattened metrics as
one JSONL line to the tracked perf-trajectory history, which
``summarize.py --regress`` gates new reports against (noise-aware
thresholds from the history's own spread).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.backend import use_backend
from repro.data import WorldConfig, generate_world, split_time_spans
from repro.eval import evaluate_span
from repro.eval.metrics import hit_at_k, ndcg_at_k, rank_of_target
from repro.incremental import TrainConfig
from repro.incremental.strategy import build_payloads
from repro.experiments import make_strategy
from repro.models import batched_compute_interests
from repro.models.aggregator import score_items_batch

SCALES = {
    "small": WorldConfig(
        num_users=32, num_items=200, num_topics=8,
        init_topics_per_user=(2, 3), new_topic_rate=0.6, num_spans=3,
        pretrain_events_per_user=(16, 24), span_events_per_user=(8, 12),
        initial_catalog_fraction=0.8, span_activity=0.9, seed=11,
    ),
    "large": WorldConfig(
        num_users=96, num_items=800, num_topics=12,
        init_topics_per_user=(2, 4), new_topic_rate=0.6, num_spans=3,
        pretrain_events_per_user=(24, 40), span_events_per_user=(10, 16),
        initial_catalog_fraction=0.8, span_activity=0.95, seed=13,
    ),
    "xlarge": WorldConfig(
        num_users=192, num_items=1600, num_topics=16,
        init_topics_per_user=(2, 4), new_topic_rate=0.6, num_spans=3,
        pretrain_events_per_user=(24, 40), span_events_per_user=(10, 16),
        initial_catalog_fraction=0.8, span_activity=0.95, seed=17,
    ),
}


def best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-N wall time in seconds (robust to scheduler noise)."""
    times: List[float] = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def build(scale: str, users_per_batch: int):
    world_cfg = SCALES[scale]
    world = generate_world(world_cfg)
    split = split_time_spans(world.interactions, num_items=world_cfg.num_items,
                             T=world_cfg.num_spans, alpha=0.5)

    def strategy(upb: int):
        # upb=1 is the untouched paper-exact path; upb>1 turns on the
        # full batched engine (grouped training + batched snapshot
        # refresh).  sparse_adam stays off so both arms run the same
        # optimizer semantics.
        config = TrainConfig(epochs_pretrain=1, epochs_incremental=1,
                             num_negatives=10, seed=0, users_per_batch=upb,
                             batched_snapshots=upb > 1)
        return make_strategy("IMSR", "ComiRec-DR", split, config,
                             model_kwargs={"dim": 32, "num_interests": 4})

    return split, strategy


def legacy_evaluate(strategy, span) -> Dict[str, float]:
    """The historical evaluator: per-user scoring, per-item scalar rank."""
    hits: List[float] = []
    ndcgs: List[float] = []
    for user in span.user_ids():
        items = span.users[user].all_items
        if not items:
            continue
        scores = strategy.score_user(user)
        for item in items:
            rank = rank_of_target(scores, item)
            hits.append(hit_at_k(rank))
            ndcgs.append(ndcg_at_k(rank))
    return {"hr": float(np.mean(hits)), "ndcg": float(np.mean(ndcgs))}


def measure_scale(scale: str, repeats: int, users_per_batch: int) -> dict:
    split, strategy_for = build(scale, users_per_batch)

    # ---- train: one pretrain epoch, per-user vs micro-batched -------- #
    per_user_train = best_of(lambda: strategy_for(1).pretrain(), repeats)
    batched_train = best_of(
        lambda: strategy_for(users_per_batch).pretrain(), repeats)

    # ---- extract: differentiable interest extraction ----------------- #
    probe = strategy_for(1)
    probe.pretrain()
    payloads = build_payloads(split.pretrain, probe.config)
    jobs = [(probe.states[p.user], p.history) for p in payloads]

    def extract_per_user():
        return [probe.model.compute_interests(s, seq) for s, seq in jobs]

    per_user_extract = best_of(extract_per_user, repeats)
    batched_extract = best_of(
        lambda: batched_compute_interests(probe.model, jobs), repeats)

    # ---- eval: legacy per-item loop vs vectorized evaluator ---------- #
    # Two batched variants: the default exact scoring (bit-identical to
    # per-user) and the stacked-GEMM throughput mode (float-tolerance).
    span = split.spans[1]
    legacy = legacy_evaluate(probe, span)  # warm + correctness reference
    per_user_eval = best_of(lambda: legacy_evaluate(probe, span), repeats)

    def run_eval(exact: bool):
        return evaluate_span(
            probe.score_user, span, targets="all",
            batch_score_fn=lambda users: probe.score_users(users, exact=exact))

    exact_result = run_eval(exact=True)
    stacked_result = run_eval(exact=False)
    exact_eval = best_of(lambda: run_eval(exact=True), repeats)
    stacked_eval = best_of(lambda: run_eval(exact=False), repeats)

    if not (exact_result.hr == legacy["hr"]
            and exact_result.ndcg == legacy["ndcg"]):
        raise AssertionError(
            f"exact batched evaluator diverged from the legacy loop: "
            f"{legacy} vs hr={exact_result.hr} ndcg={exact_result.ndcg}")
    if not (np.isclose(legacy["hr"], stacked_result.hr)
            and np.isclose(legacy["ndcg"], stacked_result.ndcg)):
        raise AssertionError(
            f"stacked batched evaluator diverged from the legacy loop: "
            f"{legacy} vs hr={stacked_result.hr} ndcg={stacked_result.ndcg}")

    # ---- backend: batched spans re-run under the fast backend -------- #
    with use_backend("fast"):
        fast_train = best_of(
            lambda: strategy_for(users_per_batch).pretrain(), repeats)
        fast_probe = strategy_for(users_per_batch)
        fast_probe.pretrain()
        fast_payloads = build_payloads(split.pretrain, fast_probe.config)
        fast_jobs = [(fast_probe.states[p.user], p.history)
                     for p in fast_payloads]
        fast_extract = best_of(
            lambda: batched_compute_interests(fast_probe.model, fast_jobs),
            repeats)

        def run_fast_eval():
            return evaluate_span(
                fast_probe.score_user, span, targets="all",
                batch_score_fn=lambda users: fast_probe.score_users(
                    users, exact=False))

        fast_result = run_fast_eval()
        fast_eval = best_of(run_fast_eval, repeats)

    return {
        "train": {
            "per_user_s": round(per_user_train, 4),
            "batched_s": round(batched_train, 4),
            "speedup": round(per_user_train / max(batched_train, 1e-9), 2),
        },
        "extract": {
            "per_user_s": round(per_user_extract, 4),
            "batched_s": round(batched_extract, 4),
            "speedup": round(per_user_extract / max(batched_extract, 1e-9), 2),
        },
        "eval": {
            "per_user_s": round(per_user_eval, 4),
            "batched_s": round(stacked_eval, 4),
            "speedup": round(per_user_eval / max(stacked_eval, 1e-9), 2),
            "exact_s": round(exact_eval, 4),
            "exact_speedup": round(per_user_eval / max(exact_eval, 1e-9), 2),
            "hr": round(stacked_result.hr, 6),
            "ndcg": round(stacked_result.ndcg, 6),
        },
        "backend": {
            "name": "fast",
            "train_s": round(fast_train, 4),
            "train_speedup": round(batched_train / max(fast_train, 1e-9), 2),
            "extract_s": round(fast_extract, 4),
            "extract_speedup": round(
                batched_extract / max(fast_extract, 1e-9), 2),
            "eval_s": round(fast_eval, 4),
            "eval_speedup": round(stacked_eval / max(fast_eval, 1e-9), 2),
            "hr": round(fast_result.hr, 6),
            "ndcg": round(fast_result.ndcg, 6),
            "hr_drift": round(abs(fast_result.hr - legacy["hr"]), 6),
            "ndcg_drift": round(abs(fast_result.ndcg - legacy["ndcg"]), 6),
        },
    }


def measure(repeats: int = 3, users_per_batch: int = 8,
            scales: Optional[List[str]] = None) -> dict:
    report = {
        "version": 1,
        "tool": "repro.perf",
        "users_per_batch": users_per_batch,
        "scales": {},
    }
    for scale in (scales if scales is not None else list(SCALES)):
        cfg = SCALES[scale]
        report["scales"][scale] = {
            "world": {"users": cfg.num_users, "items": cfg.num_items,
                      "spans": cfg.num_spans},
            **measure_scale(scale, repeats, users_per_batch),
        }
    return report


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per timing (default 3)")
    parser.add_argument("--users-per-batch", type=int, default=8,
                        help="micro-batch group size (default 8)")
    parser.add_argument("--scales", default=None, metavar="A,B",
                        help="comma-separated subset of scales to run "
                             f"(default all: {','.join(SCALES)})")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the JSON report here (default stdout)")
    parser.add_argument("--history", default=None, metavar="FILE",
                        help="append this run's flattened metrics to the "
                             "perf-trajectory history (JSONL; gated by "
                             "summarize.py --regress)")
    args = parser.parse_args(argv)
    scales = None
    if args.scales is not None:
        scales = [s.strip() for s in args.scales.split(",") if s.strip()]
        unknown = [s for s in scales if s not in SCALES]
        if unknown:
            parser.error(f"unknown scale(s) {unknown}; "
                         f"choose from {list(SCALES)}")
    report = measure(repeats=args.repeats,
                     users_per_batch=args.users_per_batch,
                     scales=scales)
    payload = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
        for scale, entry in report["scales"].items():
            print(f"{scale}: train x{entry['train']['speedup']}  "
                  f"extract x{entry['extract']['speedup']}  "
                  f"eval x{entry['eval']['speedup']}")
            backend = entry.get("backend")
            if backend:
                print(f"{scale} [{backend['name']}]: "
                      f"train x{backend['train_speedup']}  "
                      f"extract x{backend['extract_speedup']}  "
                      f"eval x{backend['eval_speedup']}  "
                      f"hr_drift {backend['hr_drift']}")
    else:
        print(payload)
    if args.history:
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        from summarize import flatten_perf_metrics

        line = json.dumps({"probe": "repro.perf",
                           "metrics": flatten_perf_metrics(report)},
                          sort_keys=True)
        with open(args.history, "a") as fh:
            fh.write(line + "\n")
        print(f"history: appended {len(flatten_perf_metrics(report))} "
              f"metric(s) to {args.history}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
