"""Figure 4 — HR trends per span for all strategies (ComiRec-DR)."""

from conftest import bench_config, bench_repeats, bench_scale, report

from repro.experiments import ascii_line_chart, run_fig4


def test_fig4_trends(run_once):
    result = run_once(run_fig4, scale=bench_scale(), config=bench_config(),
                      repeats=bench_repeats())
    report("Figure 4: HR over time spans (ComiRec-DR)", result.format(),
           result.shape_checks())
    for dataset, series in result.series.items():
        print()
        print(ascii_line_chart(series, title=f"[{dataset}] HR@20 per span",
                               y_label="HR@20"))
    for dataset, series in result.series.items():
        assert set(series) == {"FR", "FT", "SML", "ADER", "IMSR"}
        assert all(len(v) == 5 for v in series.values())
