"""Figure 7 — case studies: item-type split, trajectories, early interests."""

import numpy as np

from conftest import bench_config, bench_scale, report

from repro.experiments import run_fig7


def test_fig7_case_studies(run_once):
    result = run_once(run_fig7, scale=bench_scale(), config=bench_config())
    report("Figure 7: case studies", result.format(), result.shape_checks())

    if result.trajectory:
        print(f"(b) interest trajectory of user {result.trajectory_user} "
              f"(2-D PCA coordinates per span):")
        for t in sorted(result.trajectory):
            coords = np.round(result.trajectory[t], 2).tolist()
            print(f"  span {t}: {coords}")
    if result.heatmap.size:
        print("(c) attention heatmap (rows = target items, "
              "cols = interests tagged by creation span "
              f"{result.heatmap_created.tolist()}):")
        print(np.round(result.heatmap, 3))

    assert {"FR", "FT", "IMSR"} <= set(result.item_type_hr)
