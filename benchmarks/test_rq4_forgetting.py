"""RQ4 instrumentation — where do IMSR's improvements come from?

Not a table in the paper, but the machine-checked version of its RQ4
narrative: the span-accuracy matrix quantifies catastrophic forgetting
per strategy.  Expected shape: FT has the most negative backward
transfer, IMSR retains markedly better, FR (which re-sees all data) is
the retention ceiling.
"""

from conftest import bench_config, bench_scale, report

from repro.data import load_dataset
from repro.eval import compare_forgetting, forgetting_analysis
from repro.experiments import format_table, make_strategy, shape_check


def test_rq4_forgetting(run_once):
    def build():
        _, split = load_dataset("taobao", scale=bench_scale())
        config = bench_config()
        reports = {}
        for name in ("FT", "ADER", "IMSR", "FR"):
            strategy = make_strategy(name, "ComiRec-DR", split, config)
            reports[name] = forgetting_analysis(strategy, split)
        return reports

    reports = run_once(build)
    rows = compare_forgetting(reports)
    checks = [
        shape_check(
            "FT's backward transfer is the most negative (worst forgetting)",
            reports["FT"].backward_transfer()
            == min(r.backward_transfer() for r in reports.values())),
        shape_check(
            "IMSR retains better than FT (higher backward transfer)",
            reports["IMSR"].backward_transfer()
            > reports["FT"].backward_transfer()),
        shape_check(
            "FR is the retention ceiling (highest backward transfer)",
            reports["FR"].backward_transfer()
            == max(r.backward_transfer() for r in reports.values())),
    ]
    report("RQ4: forgetting analysis (Taobao preset, ComiRec-DR)",
           format_table(rows), checks)
    print("\nIMSR span-accuracy matrix (rows: after training span i):")
    print(format_table(reports["IMSR"].as_rows(), float_fmt="{:.3f}"))
