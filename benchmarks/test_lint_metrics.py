"""Static-analysis smoke benchmark.

Runs the autograd-contract linter over ``src/`` through the same JSON
path CI uses (``--format json``) and reports the counts as a bench
section, so ``summarize.py`` tracks lint health alongside the
reproduction metrics.
"""

import importlib.util
import json
from pathlib import Path

from conftest import report

from repro.analysis import Baseline, analyze_paths, discover_baseline, render_json

SRC = Path(__file__).resolve().parent.parent / "src"

_SPEC = importlib.util.spec_from_file_location(
    "bench_summarize", Path(__file__).resolve().parent / "summarize.py")
summarize = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(summarize)


def test_lint_src_tree():
    baseline_path = discover_baseline([SRC])
    baseline = Baseline.load(baseline_path) if baseline_path else None
    analysis = analyze_paths([str(SRC)], baseline=baseline)
    payload = json.loads(render_json(analysis))
    summary = payload["summary"]

    body = "\n".join(f"{key}: {summary[key]}"
                     for key in ("files_scanned", "findings", "errors",
                                 "warnings", "noqa_suppressed", "baselined"))
    checks = [
        {"check": "lint exits clean on src/",
         "holds": "yes" if payload["exit_code"] == 0 else "no"},
        {"check": "every module parses",
         "holds": "yes" if summary["parse_errors"] == 0 else "no"},
        {"check": ">=8 distinct rules ran",
         "holds": "yes" if len(set(payload["rules_run"])) >= 8 else "no"},
        {"check": "baseline carries no stale entries",
         "holds": "yes" if summary["stale_baseline"] == 0 else "no"},
    ]
    report("Static analysis: repro.analysis over src/", body, checks)

    assert payload["exit_code"] == 0
    assert summary["files_scanned"] >= 50


def test_contract_coverage_src_tree():
    coverage = summarize.contract_coverage(SRC)
    annotated = sum(a for _, a, _ in coverage)
    covered_pkgs = sorted(pkg for pkg, a, _ in coverage if a > 0)

    body = "\n".join(f"{pkg}: {a}/{t} public functions annotated"
                     for pkg, a, t in coverage)
    checks = [
        {"check": ">=25 public functions carry shape contracts",
         "holds": "yes" if annotated >= 25 else "no"},
        {"check": "all five modelling packages covered",
         "holds": "yes" if {"repro.autograd", "repro.nn", "repro.models",
                            "repro.incremental", "repro.eval"}
         <= set(covered_pkgs) else "no"},
    ]
    report("Shape-contract coverage over src/", body, checks)

    assert annotated >= 25
