#!/usr/bin/env python3
"""Measure the cost of the observability layer (repro.obs).

Usage:  PYTHONPATH=src python benchmarks/obs_probe.py
            [--repeats N] [--out BENCH_obs.json]

Three measurements:

* **disabled probe cost** — a microbenchmark of the module-level probe
  functions (``obs.span`` / ``obs.event`` / ``obs.counter`` /
  ``obs.observe``) with no active tracer, i.e. the price every
  instrumented call site pays in a normal, untraced run;
* **untraced run** — best-of wall time of a full incremental IMSR run
  with tracing off (the production configuration);
* **traced run** — the same run with ``--trace-dir`` live, plus the
  event/metric counts from its ``trace-meta.json``.

The headline number is ``disabled_overhead_pct``: the probe count of
the traced run times the per-call disabled cost, as a percentage of the
untraced wall time.  That is the worst-case tax instrumentation adds to
a run that never turns tracing on.  The probe **asserts it stays under
2%** — the budget docs/OBSERVABILITY.md promises — so CI fails if an
instrumentation site ever lands on a hot path.

Emits a JSON report (``BENCH_obs.json`` in CI) that
``benchmarks/summarize.py --obs`` folds into the markdown summary.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, List

from repro.data import WorldConfig, generate_world, split_time_spans
from repro.experiments import make_strategy, run_strategy
from repro.incremental import TrainConfig
from repro.obs import META_NAME, enabled
from repro.obs import trace as obs

OVERHEAD_BUDGET_PCT = 2.0

WORLD = WorldConfig(
    num_users=32, num_items=200, num_topics=8,
    init_topics_per_user=(2, 3), new_topic_rate=0.6, num_spans=3,
    pretrain_events_per_user=(16, 24), span_events_per_user=(8, 12),
    initial_catalog_fraction=0.8, span_activity=0.9, seed=11,
)


def best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-N wall time in seconds (robust to scheduler noise)."""
    times: List[float] = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def measure_disabled_probe(loops: int = 50_000) -> float:
    """Per-call cost (seconds) of a disabled probe site.

    Times a representative mix — one span with a keyword field, one
    decision event, one counter bump, one histogram observation — and
    averages over the individual calls.  Must run with tracing off.
    """
    if enabled():
        raise AssertionError("disabled-probe benchmark needs tracing off")

    def mix() -> None:
        for i in range(loops):
            with obs.span("bench.span", idx=i):
                pass
            obs.event("bench.event", idx=i)
            obs.counter("bench.counter")
            obs.observe("bench.value", 0.5)

    return best_of(mix, 3) / (4 * loops)


def build_strategy(split):
    config = TrainConfig(epochs_pretrain=2, epochs_incremental=2,
                         num_negatives=10, seed=0)
    return make_strategy("IMSR", "ComiRec-DR", split, config,
                         model_kwargs={"dim": 32, "num_interests": 4},
                         strategy_kwargs={"c1": 0.2})


def measure(repeats: int = 3) -> dict:
    world = generate_world(WORLD)
    split = split_time_spans(world.interactions, num_items=WORLD.num_items,
                             T=WORLD.num_spans, alpha=0.5)

    per_call_s = measure_disabled_probe()

    def run_untraced():
        return run_strategy(build_strategy(split), split, "bench", "bench")

    run_off_s = best_of(run_untraced, repeats)

    with tempfile.TemporaryDirectory() as tmp:
        def run_traced():
            return run_strategy(build_strategy(split), split, "bench",
                                "bench", trace_dir=tmp)

        run_traced_s = best_of(run_traced, repeats)
        meta = json.loads((Path(tmp) / META_NAME).read_text())

    # every record in the trace came from one probe call (spans emit two
    # records per call, so events_written overcounts span sites — a
    # conservative bias), plus every metric update is one probe call
    probe_calls = int(meta["events"]) + int(meta["metric_updates"])
    disabled_overhead_pct = 100.0 * probe_calls * per_call_s / run_off_s
    traced_overhead_pct = 100.0 * (run_traced_s - run_off_s) / run_off_s

    return {
        "version": 1,
        "tool": "repro.obs",
        "world": {"users": WORLD.num_users, "items": WORLD.num_items,
                  "spans": WORLD.num_spans},
        "disabled_probe_ns": round(per_call_s * 1e9, 1),
        "probe_calls": probe_calls,
        "events_written": int(meta["events"]),
        "metric_updates": int(meta["metric_updates"]),
        "run_off_s": round(run_off_s, 4),
        "run_traced_s": round(run_traced_s, 4),
        "disabled_overhead_pct": round(disabled_overhead_pct, 4),
        "traced_overhead_pct": round(traced_overhead_pct, 2),
        "budget_pct": OVERHEAD_BUDGET_PCT,
    }


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per timing (default 3)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the JSON report here (default stdout)")
    args = parser.parse_args(argv)
    report = measure(repeats=args.repeats)
    payload = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
        print(f"disabled probe: {report['disabled_probe_ns']} ns/call, "
              f"{report['probe_calls']} sites fired when traced -> "
              f"{report['disabled_overhead_pct']:.4f}% of the untraced run "
              f"(budget {report['budget_pct']}%)")
        print(f"traced run: {report['traced_overhead_pct']:+.1f}% wall "
              f"({report['events_written']} events, "
              f"{report['metric_updates']} metric updates)")
    else:
        print(payload)
    if report["disabled_overhead_pct"] >= OVERHEAD_BUDGET_PCT:
        print(f"FAIL: disabled-probe overhead "
              f"{report['disabled_overhead_pct']:.4f}% exceeds the "
              f"{OVERHEAD_BUDGET_PCT}% budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
