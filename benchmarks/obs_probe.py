#!/usr/bin/env python3
"""Measure the cost of the observability layer (repro.obs).

Usage:  PYTHONPATH=src python benchmarks/obs_probe.py
            [--repeats N] [--out BENCH_obs.json]

Four measurements:

* **disabled probe cost** — a microbenchmark of the module-level probe
  functions (``obs.span`` / ``obs.event`` / ``obs.counter`` /
  ``obs.observe``) with no active tracer, i.e. the price every
  instrumented call site pays in a normal, untraced run;
* **disabled profiler cost** — the same treatment for the op-level
  profiler's hook sites (``prof.op`` / ``prof.phase`` scopes and the
  ``_AUTOGRAD`` / ``_MEM`` ``None`` checks every ``Tensor`` op pays),
  scaled by the number of times those hooks actually fire in a
  profiled run of the same workload;
* **untraced run** — best-of wall time of a full incremental IMSR run
  with tracing off (the production configuration);
* **traced run** — the same run with ``--trace-dir`` live, plus the
  event/metric counts from its ``trace-meta.json``.

The headline numbers are ``disabled_overhead_pct`` and
``prof_disabled_overhead_pct``: the hook-fire count of an instrumented
run times the per-call disabled cost, as a percentage of the untraced
wall time.  That is the worst-case tax instrumentation adds to a run
that never turns tracing or profiling on.  The probe **asserts both
stay under 2%** — the budget docs/OBSERVABILITY.md promises — so CI
fails if an instrumentation site ever lands on a hot path.

Emits a JSON report (``BENCH_obs.json`` in CI) that
``benchmarks/summarize.py --obs`` folds into the markdown summary.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, List

from repro.data import WorldConfig, generate_world, split_time_spans
from repro.experiments import make_strategy, run_strategy
from repro.incremental import TrainConfig
from repro.obs import META_NAME, enabled
from repro.obs import prof as _prof
from repro.obs import trace as obs

OVERHEAD_BUDGET_PCT = 2.0

WORLD = WorldConfig(
    num_users=32, num_items=200, num_topics=8,
    init_topics_per_user=(2, 3), new_topic_rate=0.6, num_spans=3,
    pretrain_events_per_user=(16, 24), span_events_per_user=(8, 12),
    initial_catalog_fraction=0.8, span_activity=0.9, seed=11,
)


def best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-N wall time in seconds (robust to scheduler noise)."""
    times: List[float] = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def measure_disabled_probe(loops: int = 50_000) -> float:
    """Per-call cost (seconds) of a disabled probe site.

    Times a representative mix — one span with a keyword field, one
    decision event, one counter bump, one histogram observation — and
    averages over the individual calls.  Must run with tracing off.
    """
    if enabled():
        raise AssertionError("disabled-probe benchmark needs tracing off")

    def mix() -> None:
        for i in range(loops):
            with obs.span("bench.span", idx=i):
                pass
            obs.event("bench.event", idx=i)
            obs.counter("bench.counter")
            obs.observe("bench.value", 0.5)

    return best_of(mix, 3) / (4 * loops)


def measure_disabled_prof(loops: int = 50_000) -> dict:
    """Per-call costs (seconds) of the profiler's two disabled hook shapes.

    ``scope_s`` is a disabled ``prof.op`` / ``prof.phase`` context (one
    function call returning the shared null context, plus the ``with``
    machinery); ``check_s`` is the bare module-attribute ``None`` check
    every ``Tensor._make`` / ``Tensor.__init__`` / ``backward`` pays.
    Must run with profiling off.
    """
    if _prof.enabled():
        raise AssertionError("disabled-prof benchmark needs profiling off")

    def scopes() -> None:
        for _ in range(loops):
            with _prof.op("bench.op"):
                pass
            with _prof.phase("bench.phase"):
                pass

    def checks() -> None:
        for _ in range(loops):
            if _prof._AUTOGRAD is not None:
                raise AssertionError("profiler hooks unexpectedly armed")
            if _prof._MEM is not None:
                raise AssertionError("profiler hooks unexpectedly armed")

    return {
        "scope_s": best_of(scopes, 3) / (2 * loops),
        "check_s": best_of(checks, 3) / (2 * loops),
    }


def build_strategy(split):
    config = TrainConfig(epochs_pretrain=2, epochs_incremental=2,
                         num_negatives=10, seed=0)
    return make_strategy("IMSR", "ComiRec-DR", split, config,
                         model_kwargs={"dim": 32, "num_interests": 4},
                         strategy_kwargs={"c1": 0.2})


def measure(repeats: int = 3) -> dict:
    world = generate_world(WORLD)
    split = split_time_spans(world.interactions, num_items=WORLD.num_items,
                             T=WORLD.num_spans, alpha=0.5)

    per_call_s = measure_disabled_probe()
    prof_costs = measure_disabled_prof()

    def run_untraced():
        return run_strategy(build_strategy(split), split, "bench", "bench")

    run_off_s = best_of(run_untraced, repeats)

    with tempfile.TemporaryDirectory() as tmp:
        def run_traced():
            return run_strategy(build_strategy(split), split, "bench",
                                "bench", trace_dir=tmp)

        run_traced_s = best_of(run_traced, repeats)
        meta = json.loads((Path(tmp) / META_NAME).read_text())

    # one profiled run of the same workload counts how often the
    # profiler's hook sites actually fire, split by what each site costs
    # while disabled: sandwich fwd/bwd samples and per-tensor memory
    # tracking are bare None checks; explicit op scopes and phase
    # markers are disabled-context calls.  Backend-op samples and step
    # samples cost nothing when off (the instrumented backend wrapper
    # only exists while profiling) but are counted as checks anyway —
    # a conservative bias.
    profiled = run_strategy(build_strategy(split), split, "bench", "bench",
                            profile=True).profile
    scope_fires = check_fires = 0
    for row in profiled["kernels"]:
        if row["op"].startswith(("fwd.", "bwd.")):
            check_fires += row["count"]
        else:
            scope_fires += row["count"]
    check_fires += int(profiled["memory"].get("tensors_tracked", 0))
    check_fires += sum(row["count"] for row in profiled["backend_ops"])
    check_fires += int(profiled["steps"])
    prof_hook_fires = scope_fires + check_fires

    # every record in the trace came from one probe call (spans emit two
    # records per call, so events_written overcounts span sites — a
    # conservative bias), plus every metric update is one probe call
    probe_calls = int(meta["events"]) + int(meta["metric_updates"])
    disabled_overhead_pct = 100.0 * probe_calls * per_call_s / run_off_s
    prof_disabled_overhead_pct = 100.0 * (
        scope_fires * prof_costs["scope_s"]
        + check_fires * prof_costs["check_s"]) / run_off_s
    traced_overhead_pct = 100.0 * (run_traced_s - run_off_s) / run_off_s

    return {
        "version": 2,
        "tool": "repro.obs",
        "world": {"users": WORLD.num_users, "items": WORLD.num_items,
                  "spans": WORLD.num_spans},
        "disabled_probe_ns": round(per_call_s * 1e9, 1),
        "probe_calls": probe_calls,
        "events_written": int(meta["events"]),
        "metric_updates": int(meta["metric_updates"]),
        "run_off_s": round(run_off_s, 4),
        "run_traced_s": round(run_traced_s, 4),
        "disabled_overhead_pct": round(disabled_overhead_pct, 4),
        "traced_overhead_pct": round(traced_overhead_pct, 2),
        "prof_scope_ns": round(prof_costs["scope_s"] * 1e9, 1),
        "prof_check_ns": round(prof_costs["check_s"] * 1e9, 1),
        "prof_scope_fires": scope_fires,
        "prof_check_fires": check_fires,
        "prof_hook_fires": prof_hook_fires,
        "prof_disabled_overhead_pct": round(prof_disabled_overhead_pct, 4),
        "budget_pct": OVERHEAD_BUDGET_PCT,
    }


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per timing (default 3)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the JSON report here (default stdout)")
    args = parser.parse_args(argv)
    report = measure(repeats=args.repeats)
    payload = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
        print(f"disabled probe: {report['disabled_probe_ns']} ns/call, "
              f"{report['probe_calls']} sites fired when traced -> "
              f"{report['disabled_overhead_pct']:.4f}% of the untraced run "
              f"(budget {report['budget_pct']}%)")
        print(f"traced run: {report['traced_overhead_pct']:+.1f}% wall "
              f"({report['events_written']} events, "
              f"{report['metric_updates']} metric updates)")
        print(f"disabled profiler: {report['prof_scope_ns']} ns/scope x "
              f"{report['prof_scope_fires']} + "
              f"{report['prof_check_ns']} ns/check x "
              f"{report['prof_check_fires']} -> "
              f"{report['prof_disabled_overhead_pct']:.4f}% of the "
              f"untraced run (budget {report['budget_pct']}%)")
    else:
        print(payload)
    if report["disabled_overhead_pct"] >= OVERHEAD_BUDGET_PCT:
        print(f"FAIL: disabled-probe overhead "
              f"{report['disabled_overhead_pct']:.4f}% exceeds the "
              f"{OVERHEAD_BUDGET_PCT}% budget", file=sys.stderr)
        return 1
    if report["prof_disabled_overhead_pct"] >= OVERHEAD_BUDGET_PCT:
        print(f"FAIL: disabled-profiler overhead "
              f"{report['prof_disabled_overhead_pct']:.4f}% exceeds the "
              f"{OVERHEAD_BUDGET_PCT}% budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
