"""Table III — the main performance comparison.

Regenerates HR@20 / NDCG@20 for FR / FT / SML / ADER / IMSR on
MIND / ComiRec-DR / ComiRec-SA across the four dataset presets, with the
RI column and IMSR significance markers, side by side with the paper's
reported numbers.
"""

from conftest import bench_config, bench_repeats, bench_scale, report

from repro.experiments import run_table3


def test_table3_performance(run_once):
    result = run_once(
        run_table3,
        scale=bench_scale(),
        config=bench_config(),
        model_kwargs={"dim": 32, "num_interests": 4},
        repeats=bench_repeats(),
    )
    report("Table III: performance comparison", result.format(),
           result.shape_checks())

    cells = result.cells
    combos = sorted({(d, m) for (d, m, _) in cells})
    # hard floor: IMSR must beat FT on the majority of combos even in a
    # single-seed run; the full shape report is printed above
    wins = sum(
        cells[(d, m, "IMSR")].mean > cells[(d, m, "FT")].mean
        for d, m in combos
    )
    assert wins >= len(combos) * 0.6
