#!/usr/bin/env python3
"""Measure the robustness subsystem's cost on a small synthetic world.

Usage:  PYTHONPATH=src python benchmarks/robustness_probe.py
            [--repeats N] [--out robustness.json]

Times the checkpoint primitives (atomic save, full verification, load)
and the end-to-end overhead of running journaled vs plain, plus the
speedup a resume gets from reusing completed spans.  Emits a JSON report
that ``benchmarks/summarize.py --robustness`` folds into the markdown
summary, so the crash-safety tax is tracked next to the reproduction
metrics.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, List, Optional

from repro.data import WorldConfig, generate_world, split_time_spans
from repro.experiments import make_strategy, run_strategy
from repro.incremental import TrainConfig
from repro.persistence import (
    load_checkpoint,
    save_checkpoint,
    verify_checkpoint,
)

PROBE_WORLD = WorldConfig(
    num_users=24,
    num_items=120,
    num_topics=8,
    init_topics_per_user=(2, 3),
    new_topic_rate=0.6,
    num_spans=4,
    pretrain_events_per_user=(16, 24),
    span_events_per_user=(6, 10),
    initial_catalog_fraction=0.8,
    span_activity=0.9,
    seed=11,
)


def build_split():
    world = generate_world(PROBE_WORLD)
    return split_time_spans(
        world.interactions, num_items=PROBE_WORLD.num_items,
        T=PROBE_WORLD.num_spans, alpha=0.5,
    )


def build_strategy(split):
    config = TrainConfig(epochs_pretrain=2, epochs_incremental=1,
                         num_negatives=4, seed=0)
    return make_strategy(
        "IMSR", "ComiRec-DR", split, config,
        model_kwargs={"dim": 16, "num_interests": 2},
        strategy_kwargs={"c1": 0.2},
    )


def best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-N wall time in milliseconds (robust to scheduler noise)."""
    times: List[float] = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times) * 1000.0


def measure(repeats: int = 3, workdir: Optional[Path] = None) -> dict:
    """The full probe; returns the JSON-ready report dict."""
    split = build_split()
    with tempfile.TemporaryDirectory() as fallback:
        base = Path(workdir) if workdir is not None else Path(fallback)

        strategy = build_strategy(split)
        strategy.pretrain()
        ckpt = base / "probe.npz"
        save_ms = best_of(lambda: save_checkpoint(strategy, ckpt),
                          repeats)
        verify_ms = best_of(lambda: verify_checkpoint(ckpt), repeats)
        fresh = build_strategy(split)
        load_ms = best_of(lambda: load_checkpoint(fresh, ckpt), repeats)
        manifest = verify_checkpoint(ckpt)

        start = time.perf_counter()
        run_strategy(build_strategy(split), split, "probe", "ComiRec-DR",
                     keep_per_user=False)
        plain_s = time.perf_counter() - start

        ckdir = base / "journaled"
        start = time.perf_counter()
        run_strategy(build_strategy(split), split, "probe", "ComiRec-DR",
                     keep_per_user=False, checkpoint_dir=ckdir)
        journaled_s = time.perf_counter() - start

        start = time.perf_counter()
        resumed = run_strategy(build_strategy(split), split, "probe",
                               "ComiRec-DR", keep_per_user=False,
                               checkpoint_dir=ckdir, resume=True)
        resume_s = time.perf_counter() - start

        return {
            "version": 1,
            "tool": "repro.robustness",
            "world": {"users": PROBE_WORLD.num_users,
                      "items": PROBE_WORLD.num_items,
                      "spans": PROBE_WORLD.num_spans},
            "checkpoint": {
                "size_bytes": ckpt.stat().st_size,
                "arrays": len(manifest["arrays"]),
                "save_ms": round(save_ms, 3),
                "verify_ms": round(verify_ms, 3),
                "load_ms": round(load_ms, 3),
            },
            "run": {
                "plain_s": round(plain_s, 4),
                "journaled_s": round(journaled_s, 4),
                "journal_overhead_pct": round(
                    100.0 * (journaled_s - plain_s) / plain_s, 1),
                "resume_s": round(resume_s, 4),
                "resume_speedup": round(plain_s / max(resume_s, 1e-9), 1),
                "resumed_spans": len(resumed.resumed_spans),
            },
        }


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per primitive (default 3)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the JSON report here (default stdout)")
    args = parser.parse_args(argv[1:])
    report = measure(repeats=args.repeats)
    blob = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(blob + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(blob)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
