#!/usr/bin/env python3
"""Validate the op-level profiler on a batched large-scale training run.

Usage:  PYTHONPATH=src python benchmarks/prof_probe.py
            [--out BENCH_prof.json] [--users-per-batch B]

Two claims, both asserted (CI fails when either breaks):

* **attribution** — profiling a batched large-scale IMSR run must
  attribute at least :data:`ATTRIBUTION_FLOOR` (90%) of the training
  phase's wall time to named kernels (sandwich forward ops, backward
  fns, explicit ``optim.step`` / ``eval.*`` scopes).  Anything below
  means the profiler is losing time to unattributed glue and its op
  table cannot be trusted for optimization work;
* **bit identity** — the profiled run's final parameters and metrics
  must be byte-identical to an unprofiled run of the same seeded
  strategy.  Profiler hooks read clocks and counters only; if this
  breaks, a hook touched the numbers.

Emits a JSON report (``BENCH_prof.json`` in CI) with the attribution
fractions, the top kernels/backend ops, memory peaks, and the measured
profiling overhead.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from typing import List

import numpy as np

from repro.data import WorldConfig, generate_world, split_time_spans
from repro.experiments import make_strategy, run_strategy
from repro.incremental import TrainConfig

#: minimum fraction of train-phase wall time attributed to named kernels
ATTRIBUTION_FLOOR = 0.90

#: the perf probe's "large" world — big enough that per-op recording
#: overhead amortizes into realistic kernel durations
WORLD = WorldConfig(
    num_users=96, num_items=800, num_topics=12,
    init_topics_per_user=(2, 4), new_topic_rate=0.6, num_spans=3,
    pretrain_events_per_user=(24, 40), span_events_per_user=(10, 16),
    initial_catalog_fraction=0.8, span_activity=0.95, seed=13,
)


def build_strategy(split, users_per_batch: int):
    config = TrainConfig(epochs_pretrain=2, epochs_incremental=2,
                         num_negatives=10, seed=0,
                         users_per_batch=users_per_batch,
                         batched_snapshots=users_per_batch > 1)
    return make_strategy("IMSR", "ComiRec-DR", split, config,
                         model_kwargs={"dim": 32, "num_interests": 4},
                         strategy_kwargs={"c1": 0.2})


def param_digest(strategy) -> str:
    """SHA-256 over every named parameter's bytes, in name order."""
    hasher = hashlib.sha256()
    for name, param in sorted(strategy.model.named_parameters()):
        hasher.update(name.encode("utf-8"))
        hasher.update(np.ascontiguousarray(param.data).tobytes())
    return hasher.hexdigest()


def measure(users_per_batch: int = 8) -> dict:
    world = generate_world(WORLD)
    split = split_time_spans(world.interactions, num_items=WORLD.num_items,
                             T=WORLD.num_spans, alpha=0.5)

    base = build_strategy(split, users_per_batch)
    start = time.perf_counter()
    base_result = run_strategy(base, split, "bench", "bench")
    base_s = time.perf_counter() - start
    base_digest = param_digest(base)

    profiled = build_strategy(split, users_per_batch)
    start = time.perf_counter()
    prof_result = run_strategy(profiled, split, "bench", "bench",
                               profile=True)
    prof_s = time.perf_counter() - start
    prof_digest = param_digest(profiled)
    profile = prof_result.profile

    attribution = profile["attribution"]
    train_frac = attribution.get("train", {}).get("frac", 0.0)
    bit_identical = (
        base_digest == prof_digest
        and base_result.hr == prof_result.hr
        and base_result.ndcg == prof_result.ndcg)

    return {
        "version": 1,
        "tool": "repro.prof",
        "world": {"users": WORLD.num_users, "items": WORLD.num_items,
                  "spans": WORLD.num_spans},
        "users_per_batch": users_per_batch,
        "attribution": {
            phase: {"wall_s": round(entry["wall_s"], 4),
                    "kernel_s": round(entry["kernel_s"], 4),
                    "frac": round(entry["frac"], 4)}
            for phase, entry in attribution.items()
        },
        "attribution_floor": ATTRIBUTION_FLOOR,
        "train_attributed_frac": round(train_frac, 4),
        "top_kernels": profile["kernels"][:8],
        "top_backend_ops": profile["backend_ops"][:8],
        "memory": profile["memory"],
        "steps": profile["steps"],
        "bit_identical": bit_identical,
        "param_digest": prof_digest[:16],
        "run_unprofiled_s": round(base_s, 4),
        "run_profiled_s": round(prof_s, 4),
        "profiled_overhead_pct": round(
            100.0 * (prof_s - base_s) / base_s, 2) if base_s > 0 else None,
    }


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users-per-batch", type=int, default=8,
                        help="micro-batch group size (default 8)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the JSON report here (default stdout)")
    args = parser.parse_args(argv)
    report = measure(users_per_batch=args.users_per_batch)
    payload = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
        for phase, entry in report["attribution"].items():
            print(f"attribution[{phase}]: {100.0 * entry['frac']:.1f}% of "
                  f"{entry['wall_s']:.3f}s wall")
        print(f"bit identity: {report['bit_identical']}  "
              f"profiling overhead: {report['profiled_overhead_pct']:+.1f}%")
    else:
        print(payload)
    failed = False
    if report["train_attributed_frac"] < ATTRIBUTION_FLOOR:
        print(f"FAIL: train-phase attribution "
              f"{report['train_attributed_frac']:.3f} is below the "
              f"{ATTRIBUTION_FLOOR} floor", file=sys.stderr)
        failed = True
    if not report["bit_identical"]:
        print("FAIL: profiled run diverged from the unprofiled run "
              "(parameters or metrics differ)", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
