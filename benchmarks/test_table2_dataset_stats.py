"""Table II — dataset statistics of the four presets."""

from conftest import bench_scale, report

from repro.data import DATASET_NAMES, compute_stats, interest_reappearance_rate, load_dataset
from repro.experiments import format_table, shape_check


def test_table2_dataset_stats(run_once):
    def build():
        rows = []
        reappearance = {}
        for name in ("electronics", "clothing", "books", "taobao"):
            world, split = load_dataset(name, scale=bench_scale())
            rows.append(compute_stats(name, split).as_row())
            reappearance[name] = interest_reappearance_rate(world)
        return rows, reappearance

    rows, reappearance = run_once(build)
    checks = [
        shape_check("taobao has the most items (as in the paper)",
                    max(rows, key=lambda r: r["#items"])["dataset"] == "taobao"),
        shape_check("pretraining window holds the largest interaction block",
                    all(r["pre-training"] > max(r[str(t)] for t in range(1, 7))
                        for r in rows)),
        shape_check("interest reappearance > 80% somewhere (paper's premise)",
                    max(reappearance.values()) > 0.8),
    ]
    report("Table II analog: dataset statistics", format_table(rows), checks)
    print("interest reappearance rates:",
          {k: round(v, 3) for k, v in reappearance.items()})
    assert all(r["#users"] > 0 for r in rows)
