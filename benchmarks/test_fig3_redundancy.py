"""Figure 3 — redundancy/norm diagnostics of untrimmed new interests."""

from conftest import bench_config, bench_scale, report

from repro.experiments import format_table, run_fig3


def test_fig3_redundancy(run_once):
    result = run_once(run_fig3, scale=bench_scale(), config=bench_config())
    report("Figure 3: new-interest redundancy without vs with PIT",
           result.format(), result.shape_checks())
    if result.examples:
        print("example untrimmed new interests:")
        print(format_table(result.examples))
    assert result.norms_untrimmed, "expansion never happened"
