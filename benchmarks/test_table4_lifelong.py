"""Table IV — IMSR vs lifelong MSR baselines (MIMN, LimaRec)."""

from conftest import bench_config, bench_scale, report

from repro.experiments import run_table4


def test_table4_lifelong(run_once):
    result = run_once(run_table4, scale=bench_scale(), config=bench_config())
    report("Table IV: IMSR vs lifelong MSR models", result.format(),
           result.shape_checks())

    datasets = sorted({d for d, _ in result.runs})
    imsr_wins = sum(
        result.runs[(d, "IMSR")].avg.hr > result.runs[(d, "MIMN")].avg.hr
        for d in datasets
    )
    assert imsr_wins == len(datasets)
