"""Figure 5 — ablation study (Books and Taobao, ComiRec-DR/SA)."""

from conftest import bench_config, bench_repeats, bench_scale, report

from repro.experiments import format_table, run_fig5


def test_fig5_ablation(run_once):
    result = run_once(run_fig5, scale=bench_scale(), config=bench_config(),
                      repeats=bench_repeats())
    report("Figure 5: ablation study", result.format(), result.shape_checks())

    avg_rows = []
    for (dataset, model), averages in sorted(result.averages().items()):
        row = {"dataset": dataset, "model": model}
        row.update(averages)
        avg_rows.append(row)
    print("span-averaged HR per variant:")
    print(format_table(avg_rows))

    for key, averages in result.averages().items():
        assert set(averages) == {
            "FT", "IMSR w/o NID&PIT", "IMSR w/o EIR", "IMSR(DIR)",
            "IMSR(KD1)", "IMSR(KD2)", "IMSR(KD3)", "IMSR",
        }


def test_fig5_eir_drift_mechanism(run_once):
    """Mechanism-level EIR check backing the ablation.

    The end-metric differences between ablation variants in the paper are
    ~0.5-1% HR over 10 averaged runs on million-user logs — below the
    noise floor at reproduced scale.  EIR's *mechanism* is directly
    measurable though: with the distillation loss on, a user's existing
    interests drift less from their span-start snapshots than with it
    off.
    """
    import numpy as np

    from repro.data import load_dataset
    from repro.experiments import make_strategy, shape_check

    def build():
        _, split = load_dataset("books", scale=bench_scale())
        config = bench_config()
        drifts = {}
        for label, kwargs in (("EIR on", {}), ("EIR off", {"kd_weight": 0.0})):
            strategy = make_strategy("IMSR", "ComiRec-DR", split, config,
                                     strategy_kwargs=kwargs)
            strategy.pretrain()
            per_span = []
            for t in range(1, split.T):
                strategy.train_span(t)
                moves = []
                for state in strategy.states.values():
                    k = min(state.n_existing, state.num_interests,
                            state.prev_interests.shape[0])
                    if k:
                        moves.append(float(np.linalg.norm(
                            state.interests[:k] - state.prev_interests[:k],
                            axis=1).mean()))
                per_span.append(float(np.mean(moves)))
            drifts[label] = float(np.mean(per_span))
        return drifts

    drifts = run_once(build)
    checks = [
        shape_check(
            "EIR reduces the drift of existing interests",
            drifts["EIR on"] < drifts["EIR off"]),
    ]
    report("Figure 5 mechanism: existing-interest drift with/without EIR",
           "\n".join(f"{k}: mean drift {v:.4f}" for k, v in drifts.items()),
           checks)
