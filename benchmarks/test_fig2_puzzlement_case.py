"""Figure 2 — puzzlement case study (skirt vs LEGO analog)."""

from conftest import bench_config, bench_scale, report

from repro.experiments import run_fig2


def test_fig2_puzzlement_case(run_once):
    result = run_once(run_fig2, scale=bench_scale(), config=bench_config())
    report(
        f"Figure 2: dot-products for user {result.user} "
        f"(new-topic item {result.new_topic_item}, "
        f"old-topic item {result.old_topic_item})",
        result.format(),
        result.shape_checks(),
    )
    assert result.puzzlement_new_before > 0
    assert result.n_existing >= 1
    assert len(result.after_new) > result.n_existing  # NID created capsules
