#!/usr/bin/env python3
"""Measure the cost of the runtime write-guard (repro.sanitize).

Usage:  PYTHONPATH=src python benchmarks/sanitize_probe.py
            [--repeats N] [--out BENCH_sanitize.json]

Three measurements:

* **disabled guard cost** — microbenchmarks of the two prices every
  guarded site pays in a normal, unenforced run: one
  ``sanitize.capture`` call (a bool test + isinstance check) and one
  ``_enabled`` flag test inside ``Tensor._make``;
* **unenforced run** — best-of wall time of a full incremental IMSR
  run with the sanitizer off (the production configuration);
* **enforced run** — the same run under ``sanitize.enforced()``, where
  every capture boundary freezes and every graph build stamps.

The headline number is ``disabled_overhead_pct``: the guarded-site
firing counts of a real run times the per-call disabled costs, as a
percentage of the unenforced wall time.  That is the worst-case tax the
write-guard adds to a run that never turns enforcement on.  The probe
**asserts it stays under 2%** — the budget docs/ANALYSIS.md promises —
so CI fails if a guard ever lands on a hot path.

Emits a JSON report (``BENCH_sanitize.json`` in CI) that
``benchmarks/summarize.py --sanitize`` folds into the markdown summary.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, List

import numpy as np

from repro import sanitize
from repro.autograd.tensor import Tensor
from repro.data import WorldConfig, generate_world, split_time_spans
from repro.experiments import make_strategy, run_strategy
from repro.incremental import TrainConfig

OVERHEAD_BUDGET_PCT = 2.0

WORLD = WorldConfig(
    num_users=32, num_items=200, num_topics=8,
    init_topics_per_user=(2, 3), new_topic_rate=0.6, num_spans=3,
    pretrain_events_per_user=(16, 24), span_events_per_user=(8, 12),
    initial_catalog_fraction=0.8, span_activity=0.9, seed=11,
)

#: every module that imported ``capture`` by value; the counter has to
#: patch the reference each of them actually calls through
_CAPTURE_SITES = (
    "repro.models.base",
    "repro.models.batched_train",
    "repro.incremental.strategy",
    "repro.incremental.ewc",
    "repro.incremental.ader",
    "repro.incremental.imsr_replay",
    "repro.incremental.imsr.framework",
    "repro.persistence",
)


def best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-N wall time in seconds (robust to scheduler noise)."""
    times: List[float] = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def measure_disabled_capture(loops: int = 200_000) -> float:
    """Per-call cost (seconds) of ``capture`` with enforcement off."""
    if sanitize.checking_enabled():
        raise AssertionError("disabled-guard benchmark needs enforcement off")
    arr = np.zeros(8)
    capture = sanitize.capture

    def mix() -> None:
        for _ in range(loops):
            capture(arr)

    return best_of(mix, 3) / loops


def measure_disabled_flag_test(loops: int = 200_000) -> float:
    """Per-call cost (seconds) of the ``_enabled`` test in ``_make``."""

    def mix() -> None:
        for _ in range(loops):
            if sanitize._enabled:  # the exact expression _make evaluates
                pass

    return best_of(mix, 3) / loops


def count_guard_firings(split) -> dict:
    """One full run with counting shims on every guarded site."""
    import importlib

    counts = {"capture": 0, "make": 0}
    real_capture = sanitize.capture
    real_make = Tensor._make

    def counting_capture(array):
        counts["capture"] += 1
        return real_capture(array)

    def counting_make(data, parents):
        counts["make"] += 1
        return real_make(data, parents)

    modules = [importlib.import_module(name) for name in _CAPTURE_SITES]
    for mod in modules:
        mod._capture = counting_capture
    Tensor._make = staticmethod(counting_make)
    try:
        run_strategy(build_strategy(split), split, "bench", "bench")
    finally:
        for mod in modules:
            mod._capture = real_capture
        Tensor._make = staticmethod(real_make)
    return counts


def build_strategy(split):
    config = TrainConfig(epochs_pretrain=2, epochs_incremental=2,
                         num_negatives=10, seed=0)
    return make_strategy("IMSR", "ComiRec-DR", split, config,
                         model_kwargs={"dim": 32, "num_interests": 4},
                         strategy_kwargs={"c1": 0.2})


def measure(repeats: int = 3) -> dict:
    world = generate_world(WORLD)
    split = split_time_spans(world.interactions, num_items=WORLD.num_items,
                             T=WORLD.num_spans, alpha=0.5)

    capture_ns = measure_disabled_capture()
    flag_ns = measure_disabled_flag_test()
    counts = count_guard_firings(split)

    def run_off():
        return run_strategy(build_strategy(split), split, "bench", "bench")

    with sanitize.enforced(False):
        run_off_s = best_of(run_off, repeats)
    with sanitize.enforced(True):
        run_on_s = best_of(run_off, repeats)

    disabled_cost_s = (counts["capture"] * capture_ns
                       + counts["make"] * flag_ns)
    disabled_overhead_pct = 100.0 * disabled_cost_s / run_off_s
    enforced_overhead_pct = 100.0 * (run_on_s - run_off_s) / run_off_s

    return {
        "version": 1,
        "tool": "repro.sanitize",
        "world": {"users": WORLD.num_users, "items": WORLD.num_items,
                  "spans": WORLD.num_spans},
        "capture_ns": round(capture_ns * 1e9, 1),
        "flag_test_ns": round(flag_ns * 1e9, 1),
        "capture_calls": counts["capture"],
        "graph_builds": counts["make"],
        "run_off_s": round(run_off_s, 4),
        "run_enforced_s": round(run_on_s, 4),
        "disabled_overhead_pct": round(disabled_overhead_pct, 4),
        "enforced_overhead_pct": round(enforced_overhead_pct, 2),
        "budget_pct": OVERHEAD_BUDGET_PCT,
    }


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per timing (default 3)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the JSON report here (default stdout)")
    args = parser.parse_args(argv)
    report = measure(repeats=args.repeats)
    payload = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
        print(f"disabled guards: capture {report['capture_ns']} ns x "
              f"{report['capture_calls']} calls, flag test "
              f"{report['flag_test_ns']} ns x {report['graph_builds']} "
              f"graph builds -> {report['disabled_overhead_pct']:.4f}% of "
              f"the unenforced run (budget {report['budget_pct']}%)")
        print(f"enforced run: {report['enforced_overhead_pct']:+.1f}% wall")
    else:
        print(payload)
    if report["disabled_overhead_pct"] >= OVERHEAD_BUDGET_PCT:
        print(f"FAIL: disabled-guard overhead "
              f"{report['disabled_overhead_pct']:.4f}% exceeds the "
              f"{OVERHEAD_BUDGET_PCT}% budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
