"""Ablation benches for the substrate design choices DESIGN.md records.

These are *our* choices, not the paper's; each bench quantifies how much
the choice matters so the substitutions are auditable:

1. **Routing vote normalization** — the paper's text normalizes votes
   across items; the MIND/ComiRec reference code normalizes across
   capsules.  We compare end-task HR under both.
2. **Warm-start routing** — incremental IMSR carries interests across
   spans by initializing routing from the stored interest matrix.  With
   cold (random) initialization the carry-over mechanism disappears, so
   EIR's teacher becomes meaningless and retention should degrade.
3. **Dense vs strict evaluation** — we default to scoring every
   next-span item ("all") instead of the single held-out test item
   ("test") to recover statistical power at synthetic scale.  The bench
   verifies the two protocols agree on the FT-vs-IMSR ordering.
"""

from conftest import bench_config, bench_scale, report

from repro.data import load_dataset
from repro.eval import average_results, evaluate_span
from repro.experiments import make_strategy, shape_check
from repro.incremental import IMSR, FineTune
from repro.models import ComiRecDR


def _run(strategy, split, eval_targets="all"):
    strategy.pretrain()
    results = []
    for t in range(1, split.T):
        strategy.train_span(t)
        results.append(evaluate_span(strategy.score_user, split.spans[t],
                                     targets=eval_targets))
    return average_results(results)


def test_ablation_routing_normalization(run_once):
    def build():
        _, split = load_dataset("taobao", scale=bench_scale())
        config = bench_config()
        out = {}
        for normalize in ("items", "capsules"):
            model = ComiRecDR(split.num_items, dim=32, num_interests=4,
                              seed=config.seed, routing_normalize=normalize)
            out[normalize] = _run(IMSR(model, split, config), split)
        return out

    results = run_once(build)
    checks = [
        shape_check(
            "both normalization conventions produce a working system "
            "(HR within 2x of each other)",
            0.5 < results["items"].hr / max(results["capsules"].hr, 1e-9) < 2.0),
    ]
    body = "\n".join(
        f"normalize={name}: HR={res.hr:.4f} NDCG={res.ndcg:.4f}"
        for name, res in results.items()
    )
    report("Ablation: routing vote normalization (items vs capsules)",
           body, checks)


def test_ablation_warm_start_routing(run_once):
    def build():
        _, split = load_dataset("taobao", scale=bench_scale())
        config = bench_config()
        out = {}
        for warm in (True, False):
            model = ComiRecDR(split.num_items, dim=32, num_interests=4,
                              seed=config.seed, warm_start=warm)
            out[warm] = _run(IMSR(model, split, config), split)
        return out

    results = run_once(build)
    checks = [
        shape_check(
            "warm-start routing (interest carry-over) beats cold-start "
            "under IMSR",
            results[True].hr > results[False].hr),
    ]
    body = "\n".join(
        f"warm_start={name}: HR={res.hr:.4f} NDCG={res.ndcg:.4f}"
        for name, res in results.items()
    )
    report("Ablation: warm-start vs cold-start routing", body, checks)


def test_ablation_eval_protocol(run_once):
    def build():
        _, split = load_dataset("taobao", scale=bench_scale())
        config = bench_config()
        out = {}
        for name, cls in (("FT", FineTune), ("IMSR", IMSR)):
            strategy = make_strategy(name, "ComiRec-DR", split, config)
            strategy.pretrain()
            dense, strict = [], []
            for t in range(1, split.T):
                strategy.train_span(t)
                dense.append(evaluate_span(strategy.score_user,
                                           split.spans[t], targets="all"))
                strict.append(evaluate_span(strategy.score_user,
                                            split.spans[t], targets="test"))
            out[name] = (average_results(dense), average_results(strict))
        return out

    results = run_once(build)
    dense_order = results["IMSR"][0].hr - results["FT"][0].hr
    strict_order = results["IMSR"][1].hr - results["FT"][1].hr
    checks = [
        shape_check(
            "dense and strict protocols agree on the IMSR-vs-FT ordering "
            "(or strict is within noise)",
            dense_order * strict_order >= 0 or abs(strict_order) < 0.02),
        shape_check(
            "dense protocol yields >= 5x the test cases of strict",
            sum(r.num_cases for r in [results["FT"][0]])
            >= 5 * sum(r.num_cases for r in [results["FT"][1]])),
    ]
    body = "\n".join(
        f"{name}: dense HR={pair[0].hr:.4f} (n={pair[0].num_cases})  "
        f"strict HR={pair[1].hr:.4f} (n={pair[1].num_cases})"
        for name, pair in results.items()
    )
    report("Ablation: dense vs strict evaluation protocol", body, checks)
