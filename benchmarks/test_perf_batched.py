"""Performance: batched vs per-user interest extraction (inference path)."""

import time

import numpy as np

from conftest import report

from repro.models import ComiRecDR, batched_extract_dr
from repro.experiments import shape_check


def test_perf_batched_extraction(run_once):
    def build():
        rng = np.random.default_rng(0)
        model = ComiRecDR(num_items=2000, dim=32, num_interests=4, seed=0)
        jobs = []
        for user in range(300):
            state = model.init_user_state(user)
            if user % 3 == 0:
                model.expand_user(state, 3, span=1)
            seq = rng.integers(0, 2000, size=int(rng.integers(8, 40))).tolist()
            jobs.append((state, seq))

        start = time.perf_counter()
        slow = [model.compute_interests(s, seq).data for s, seq in jobs]
        per_user_s = time.perf_counter() - start

        start = time.perf_counter()
        fast = batched_extract_dr(model, jobs)
        batched_s = time.perf_counter() - start

        max_err = max(
            float(np.abs(a - b).max()) for a, b in zip(slow, fast)
        )
        return per_user_s, batched_s, max_err

    per_user_s, batched_s, max_err = run_once(build)
    speedup = per_user_s / max(batched_s, 1e-9)
    checks = [
        shape_check("batched extraction outputs match per-user (1e-8)",
                    max_err < 1e-8),
        # the per-user path is already numpy-bound, so the win is the
        # removed graph/python overhead; padding waste caps it on ragged
        # batches
        shape_check("batched extraction is not slower than per-user",
                    speedup >= 1.0),
    ]
    report(
        "Performance: batched vs per-user extraction (300 users)",
        f"per-user: {per_user_s*1000:.1f} ms   batched: {batched_s*1000:.1f} ms"
        f"   speedup: {speedup:.1f}x   max err: {max_err:.2e}",
        checks,
    )
