#!/usr/bin/env python3
"""Extending the library: plug a custom MSR model into IMSR.

The incremental strategies only depend on the :class:`repro.models.MSRModel`
interface — ``compute_interests`` plus the user-state hooks.  This example
implements a *mean-pooling multi-interest* model (each interest attends a
soft window of the sequence) from scratch on the autograd substrate and
runs the full IMSR framework on top of it, unchanged.

Run:  python examples/custom_model_plugin.py
"""

from typing import Sequence

import numpy as np

from repro.autograd import Tensor
from repro.autograd.ops import softmax
from repro.data import load_dataset
from repro.eval import average_results, evaluate_span
from repro.experiments import default_config
from repro.incremental import IMSR, FineTune
from repro.models import MSRModel, UserState
from repro.nn import Parameter, init

class WindowedMeanMSR(MSRModel):
    """Each interest k pools the sequence with a learned position profile.

    Simpler than dynamic routing or self-attention, but still produces a
    (K, d) interest matrix, so EIR/NID/PIT apply without modification.
    """

    family = "dr"
    MAX_LEN = 256

    def __init__(self, num_items: int, dim: int = 32, num_interests: int = 4,
                 seed: int = 0):
        super().__init__(num_items, dim=dim, num_interests=num_interests,
                         seed=seed)
        # positional logits per interest slot (shared across users)
        self.position_logits = Parameter(
            init.normal((16, self.MAX_LEN), self.rng, std=0.5))

    def compute_interests(self, state: UserState, item_seq: Sequence[int]) -> Tensor:
        if len(item_seq) == 0:
            raise ValueError("empty sequence")
        n = min(len(item_seq), self.MAX_LEN)
        embs = self.embed_items(list(item_seq)[-n:])            # (n, d)
        k = state.num_interests
        logits = self.position_logits[:k, :n]                    # (K, n)
        # warm-start: bias the pooling toward items near stored interests
        warm = Tensor(state.interests[:k] @ embs.data.T)         # (K, n)
        weights = softmax(logits + warm, axis=1)                 # (K, n)
        return weights @ embs                                    # (K, d)

def main() -> None:
    world, split = load_dataset("electronics", scale=0.5)
    config = default_config(epochs_pretrain=8, epochs_incremental=3, seed=0)

    def build(strategy_cls, **kwargs):
        model = WindowedMeanMSR(split.num_items, dim=32, num_interests=4,
                                seed=0)
        return strategy_cls(model, split, config, **kwargs)

    for label, strategy in (
        ("FT  + custom model", build(FineTune)),
        ("IMSR + custom model", build(IMSR)),
    ):
        strategy.pretrain()
        results = []
        for t in range(1, split.T):
            strategy.train_span(t)
            results.append(evaluate_span(strategy.score_user, split.spans[t],
                                         targets="all"))
        avg = average_results(results)
        mean_k = np.mean([s.num_interests for s in strategy.states.values()])
        print(f"{label}: HR@20={avg.hr:.3f}  NDCG@20={avg.ndcg:.3f}  "
              f"mean interests={mean_k:.2f}")

if __name__ == "__main__":
    main()
