#!/usr/bin/env python3
"""Quickstart: incremental multi-interest recommendation in ~40 lines.

Generates a small synthetic interaction stream, pretrains a ComiRec-DR
base model, then updates it span by span with IMSR — watching interest
counts grow as users develop new interests — and compares against plain
fine-tuning.

Run:  python examples/quickstart.py
"""

from repro.data import load_dataset
from repro.eval import evaluate_span
from repro.experiments import default_config, make_strategy

def main() -> None:
    # 1. Data: a Taobao-like preset — many items, fast interest change.
    #    The paper's protocol: a pretraining window plus T=6 spans.
    world, split = load_dataset("taobao", scale=0.5)
    print(f"users={split.num_users}  items={split.num_items}  spans={split.T}")

    config = default_config(epochs_pretrain=8, epochs_incremental=3, seed=0)

    for name in ("FT", "IMSR"):
        # 2. Strategy = base model (ComiRec-DR) + incremental learning rule.
        strategy = make_strategy(name, "ComiRec-DR", split, config)
        strategy.pretrain()

        # 3. Per span: train on the new interactions only, then test on the
        #    *next* span's interactions (all unseen at that point).
        print(f"\n[{name}]")
        for t in range(1, split.T):
            strategy.train_span(t)
            result = evaluate_span(strategy.score_user, split.spans[t],
                                   targets="all")
            counts = strategy.interest_counts()
            mean_k = sum(counts.values()) / len(counts)
            print(f"  span {t}: HR@20={result.hr:.3f}  "
                  f"NDCG@20={result.ndcg:.3f}  mean interests={mean_k:.2f}")

if __name__ == "__main__":
    main()
