#!/usr/bin/env python3
"""Scenario: a books platform with stable user interests.

The paper's ablation (Fig. 5) finds that on Books — where interests are
stable — the existing-interests retainer (EIR) matters most: removing it
makes IMSR *worse than plain fine-tuning*, because new-interest capsules
interfere with old interests that were doing all the work.

This example reproduces that contrast on the `books` preset:

* IMSR (full)        — EIR + NID + PIT;
* IMSR w/o EIR       — expansion but no retention;
* IMSR(DIR)          — Euclidean anchoring instead of distillation;
* FT                 — no retention, no expansion.

It also prints how far each user's existing interests drifted from their
pre-span positions, the quantity EIR controls.

Run:  python examples/stable_interests_retention.py
"""

import numpy as np

from repro.data import load_dataset
from repro.eval import average_results, evaluate_span
from repro.experiments import default_config, make_strategy

VARIANTS = [
    ("IMSR (full)", "IMSR", {}),
    ("IMSR w/o EIR", "IMSR", {"kd_weight": 0.0}),
    ("IMSR (DIR)", "IMSR", {"retainer": "DIR"}),
    ("FT", "FT", {}),
]

def interest_drift(strategy) -> float:
    """Mean L2 drift of existing interests from their span-start snapshot."""
    drifts = []
    for state in strategy.states.values():
        k = min(state.n_existing, state.num_interests,
                state.prev_interests.shape[0])
        if k == 0:
            continue
        drifts.append(float(np.linalg.norm(
            state.interests[:k] - state.prev_interests[:k], axis=1).mean()))
    return float(np.mean(drifts)) if drifts else 0.0

def main() -> None:
    world, split = load_dataset("books", scale=0.6)
    config = default_config(epochs_pretrain=8, epochs_incremental=3, seed=3)

    print(f"{'variant':<14} {'avg HR@20':>9} {'avg drift':>9}")
    for label, strategy_name, kwargs in VARIANTS:
        strategy = make_strategy(strategy_name, "ComiRec-DR", split, config,
                                 strategy_kwargs=kwargs)
        strategy.pretrain()
        results, drifts = [], []
        for t in range(1, split.T):
            strategy.train_span(t)
            results.append(evaluate_span(strategy.score_user, split.spans[t],
                                         targets="all"))
            drifts.append(interest_drift(strategy))
        avg = average_results(results)
        print(f"{label:<14} {avg.hr:>9.3f} {np.mean(drifts):>9.3f}")

if __name__ == "__main__":
    main()
