#!/usr/bin/env python3
"""Scenario: an e-commerce platform with a fast-growing catalog.

This is the workload the paper's introduction motivates: users suddenly
develop new interests (the computer-gamer who starts buying baby-care
products), and a model with a fixed number of interest vectors either
overwrites old interests or fails to capture new ones.

We build a custom world with aggressive catalog growth and new-interest
adoption, then show:

* NID's expansion log — which users got new interest capsules and when;
* how IMSR's interest count tracks the ground-truth topic adoption;
* HR on *new* vs *existing* items for FT vs IMSR.

Run:  python examples/catalog_growth_ecommerce.py
"""

import numpy as np

from repro.data import WorldConfig, load_custom
from repro.eval import evaluate_span
from repro.experiments import default_config, make_strategy

def main() -> None:
    config = WorldConfig(
        num_users=80,
        num_items=900,
        num_topics=40,
        new_topic_rate=0.6,            # interests change fast
        new_topics_range=(1, 3),
        initial_catalog_fraction=0.5,  # half the catalog appears later
        num_spans=6,
        seed=42,
    )
    world, split = load_custom(config)
    train_config = default_config(epochs_pretrain=8, epochs_incremental=3,
                                  seed=1)

    imsr = make_strategy("IMSR", "ComiRec-DR", split, train_config)
    ft = make_strategy("FT", "ComiRec-DR", split, train_config)
    for strategy in (imsr, ft):
        strategy.pretrain()

    seen: dict = {u: set() for u in range(config.num_users)}
    for user in split.pretrain.user_ids():
        seen[user].update(split.pretrain.users[user].all_items)

    print("span | ground-truth adopters | NID-expanded | mean K (IMSR)")
    for t in range(1, split.T):
        imsr.train_span(t)
        ft.train_span(t)
        adopters = world.new_topic_users(t)
        expanded = imsr.expansion_log.get(t, [])
        mean_k = np.mean([s.num_interests for s in imsr.states.values()])
        print(f"  {t}  |   {len(adopters):3d}                 |"
              f"   {len(expanded):3d}        |  {mean_k:.2f}")
        for user in split.spans[t - 1].user_ids():
            seen[user].update(split.spans[t - 1].users[user].all_items)

    # Final-span evaluation, split by whether the user saw the item before.
    last = split.spans[split.T - 1]
    def split_eval(strategy):
        existing = evaluate_span(
            strategy.score_user, last, targets="all",
            item_filter=lambda u, i: i in seen.get(u, set()))
        new = evaluate_span(
            strategy.score_user, last, targets="all",
            item_filter=lambda u, i: i not in seen.get(u, set()))
        return existing.hr, new.hr

    print("\nfinal span HR@20 (existing items / new items):")
    for name, strategy in (("IMSR", imsr), ("FT", ft)):
        ex_hr, new_hr = split_eval(strategy)
        print(f"  {name}: {ex_hr:.3f} / {new_hr:.3f}")

if __name__ == "__main__":
    main()
